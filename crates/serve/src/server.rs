//! The multi-client query server.
//!
//! One [`Server`] owns a [`SpateFramework`] behind an `RwLock`: query
//! workers evaluate under shared read guards (the whole read path is
//! `Send + Sync`, pinned by `spate-core`'s concurrency tests), while
//! operator mutations — [`Server::ingest`] and [`Server::run_decay`] —
//! take the write lock. Cache coherence falls out of the lock order: the
//! framework's [`StoreObserver`] hooks invalidate the shared
//! [`EpochCache`] *synchronously inside the mutation* (exclusive
//! access), and workers only insert cache entries while holding a read
//! guard, so a reader can never re-populate an entry concurrently with
//! the eviction that dropped it. Zero stale reads, by construction
//! rather than by TTL.
//!
//! Request flow:
//!
//! ```text
//! client ──frame──▶ reader thread ──classify──▶ admission queue
//!                        │ (overflow)               │ pop
//!                        ▼                          ▼
//!                    Shed frame               worker pool ──frames──▶ client
//! ```
//!
//! A per-connection reader thread decodes requests and classifies them
//! by window length (short = interactive, long = scan); the two-priority
//! [`AdmissionQueue`] bounds each class and keeps clients fair; workers
//! pop, shed anything that out-waited its deadline, evaluate through the
//! cache and stream the answer back in bounded chunks.

use crate::admission::{AdmissionConfig, AdmissionQueue, Class};
use crate::cache::{CacheConfig, CacheInvalidator, CacheStats, EpochCache};
use crate::proto::{
    errcode, AnomalyWire, ProfileFrame, Request, RequestBody, Response, ResponseBody, SpanWire,
    StatsFrame, TableHeader, TraceFrame, CHUNK_ROWS,
};
use crate::transport::{duplex, Endpoint, TransportError};
use obs::CostProfile;
use obs::{CancelFlag, EventKind, Histogram, Interrupt};
use spate_core::framework::{ExplorationFramework, IngestStats, SpaceReport};
use spate_core::index::Covering;
use spate_core::query::{project_snapshot_refs, Coverage, ExactResult, Query, QueryResult};
use spate_core::{
    AnomalyRecord, DecayReport, MetaConfig, MetaMonitor, MetaSummary, SpateFramework,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telco_trace::cells::{BoundingBox, CellLayout};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size.
    pub workers: usize,
    /// Admission depth of the interactive class.
    pub interactive_depth: usize,
    /// Admission depth of the scan class.
    pub scan_depth: usize,
    /// Windows of at most this many epochs classify as interactive.
    pub interactive_max_window: u32,
    /// Jobs older than this on pop are shed instead of served.
    pub queue_deadline: Duration,
    /// Shared epoch cache shards.
    pub cache_shards: usize,
    /// Epochs cached per shard.
    pub cache_capacity_per_shard: usize,
    /// Warm the cache ahead of each session's window (the serving-tier
    /// generalization of `ExplorerSession`'s containment trick).
    pub prefetch: bool,
    /// Max epochs prefetched ahead of a served window.
    pub prefetch_lookahead: u32,
    /// Tune the meta-highlights monitor (θ, arming ticks, history).
    pub meta: MetaConfig,
    /// When set, a background thread ticks the meta-highlights monitor at
    /// this interval. When `None` (the default, and what deterministic
    /// harnesses want) the operator drives it via [`Server::monitor_tick`].
    pub monitor_interval: Option<Duration>,
    /// Finished [`CostProfile`]s retained for the Profile control frame
    /// (bounded FIFO; older requests become unanswerable, like traces
    /// overwritten in the flight-recorder ring).
    pub profile_history: usize,
    /// Chaos drills only: honor the reserved [`CHAOS_PANIC_ATTRIBUTE`]
    /// and [`CHAOS_STALL_ATTRIBUTE`] explore attributes (panic inside
    /// evaluation; stall before the first budget checkpoint), exercising
    /// panic isolation and deadline expiry deterministically. Off by
    /// default — production configurations never trip either.
    pub chaos_poison: bool,
}

/// Reserved explore attribute that, under [`ServeConfig::chaos_poison`],
/// makes the worker panic mid-evaluation (poison-query injection).
pub const CHAOS_PANIC_ATTRIBUTE: &str = "__chaos_panic";

/// Reserved explore attribute that, under [`ServeConfig::chaos_poison`],
/// stalls the worker for [`CHAOS_STALL`] before evaluation — long enough
/// that a small nonzero deadline is *certainly* spent by the first
/// checkpoint, making deadline-storm drills deterministic.
pub const CHAOS_STALL_ATTRIBUTE: &str = "__chaos_stall";

/// How long [`CHAOS_STALL_ATTRIBUTE`] stalls evaluation.
pub const CHAOS_STALL: Duration = Duration::from_millis(5);

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            interactive_depth: 64,
            scan_depth: 16,
            interactive_max_window: 8,
            queue_deadline: Duration::from_secs(2),
            cache_shards: 8,
            cache_capacity_per_shard: 16,
            prefetch: true,
            prefetch_lookahead: 4,
            meta: MetaConfig::default(),
            monitor_interval: None,
            profile_history: 64,
            chaos_poison: false,
        }
    }
}

/// Poison-tolerant `Mutex` lock: a worker that panicked while holding a
/// server lock must never take the whole server down with it. Every
/// shared structure here is updated in single small steps (insert/remove
/// a key, push a profile, bump a counter), so the state under a poisoned
/// lock is still coherent — recover it and count the event.
fn lock_sane<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        obs::inc("serve.lock.poison_recovered");
        e.into_inner()
    })
}

/// Poison-tolerant `RwLock` read (framework read path).
fn read_sane<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| {
        obs::inc("serve.lock.poison_recovered");
        e.into_inner()
    })
}

/// Poison-tolerant `RwLock` write (operator mutations).
fn write_sane<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| {
        obs::inc("serve.lock.poison_recovered");
        e.into_inner()
    })
}

/// Counter snapshot of server behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests answered (any terminal frame except shed).
    pub queries: u64,
    /// Exact/SQL rows streamed in row chunks.
    pub rows_streamed: u64,
    /// Requests rejected at admission (queue overflow).
    pub shed_overflow: u64,
    /// Requests shed by workers after out-waiting the deadline.
    pub shed_deadline: u64,
    /// Malformed frames received from clients.
    pub protocol_errors: u64,
    /// Requests interrupted by a client `Cancel` frame.
    pub cancelled: u64,
    /// Requests whose end-to-end deadline expired mid-evaluation.
    pub deadline_expired: u64,
    /// Worker panics isolated into `Error` terminal frames.
    pub panics: u64,
    /// Worker loops restarted after a panic escaped request isolation.
    pub worker_respawns: u64,
}

#[derive(Default)]
struct StatsCells {
    queries: AtomicU64,
    rows_streamed: AtomicU64,
    shed_overflow: AtomicU64,
    shed_deadline: AtomicU64,
    protocol_errors: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    panics: AtomicU64,
    worker_respawns: AtomicU64,
}

/// Bounded FIFO of the most recently finished per-request cost
/// profiles, keyed by trace id — what the Profile control frame reads.
struct ProfileStore {
    profiles: HashMap<u64, CostProfile>,
    order: VecDeque<u64>,
    latest: u64,
    capacity: usize,
}

impl ProfileStore {
    fn new(capacity: usize) -> Self {
        Self {
            profiles: HashMap::new(),
            order: VecDeque::new(),
            latest: 0,
            capacity: capacity.max(1),
        }
    }

    fn record(&mut self, profile: CostProfile) {
        let id = profile.trace_id;
        if self.profiles.insert(id, profile).is_none() {
            self.order.push_back(id);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.profiles.remove(&evicted);
                }
            }
        }
        self.latest = id;
    }

    /// Resolve a request: 0 means "the most recently profiled request".
    fn lookup(&self, trace_id: u64) -> (u64, Vec<(String, String)>) {
        let resolved = if trace_id == 0 { self.latest } else { trace_id };
        let metrics = self
            .profiles
            .get(&resolved)
            .map(CostProfile::rows)
            .unwrap_or_default();
        (resolved, metrics)
    }
}

struct Job {
    conn: u64,
    endpoint: Endpoint,
    request: Request,
    queued_at: Instant,
    /// End-to-end trace id minted at admission: `(conn << 32) | request_id`.
    trace_id: u64,
    /// Flipped by a later `Cancel` frame on the same connection; the
    /// worker observes it at every evaluation checkpoint.
    cancel: CancelFlag,
}

/// The trace id a request's spans are filed under — stable across the
/// reader thread that admits it and the worker that serves it, and
/// computable client-side for "why was request R slow" lookups.
pub fn trace_id_for(conn: u64, request_id: u64) -> u64 {
    (conn << 32) | (request_id & 0xFFFF_FFFF)
}

struct Shared {
    fw: RwLock<SpateFramework>,
    cache: Arc<EpochCache>,
    queue: AdmissionQueue<Job>,
    config: ServeConfig,
    stats: StatsCells,
    /// Last served window per connection, for prefetch containment.
    sessions: Mutex<HashMap<u64, (u32, u32)>>,
    /// Pre-resolved labeled latency series — workers record without
    /// re-interning (`serve.latency_us{class="..."}`).
    lat_interactive: Arc<Histogram>,
    lat_scan: Arc<Histogram>,
    /// θ-rarity self-monitoring over the metric registry.
    monitor: Mutex<MetaMonitor>,
    /// Finished per-request cost profiles (Profile control frame).
    profiles: Mutex<ProfileStore>,
    /// Trace ids currently being served by a worker. `Trace`/`Profile`
    /// control frames fence on this set so that once a client has seen a
    /// request's terminal frame, the request's closed spans and recorded
    /// profile are guaranteed visible — the span guard drops and the
    /// profile lands between the terminal send and the removal.
    inflight: Inflight,
    /// Cancellation flags of admitted-but-unfinished requests, keyed by
    /// trace id. The reader thread flips a flag on `Cancel`; entries are
    /// dropped when the request settles (terminal frame sent) or sheds.
    cancels: Mutex<HashMap<u64, CancelFlag>>,
    /// Set on shutdown to stop the optional monitor thread.
    stop: AtomicBool,
}

/// The in-flight trace-id set plus a condvar notified on every removal,
/// so [`await_settled`] parks instead of spinning.
#[derive(Default)]
struct Inflight {
    set: Mutex<HashSet<u64>>,
    settled: Condvar,
}

impl Inflight {
    /// Block (bounded) until `trace_id` is no longer in flight.
    fn await_settled(&self, trace_id: u64, bound: Duration) {
        let deadline = Instant::now() + bound;
        let mut set = lock_sane(&self.set);
        while set.contains(&trace_id) {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            set = self
                .settled
                .wait_timeout(set, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// RAII registration of a request being served: inserted before any
/// answer frame leaves, removed (with a condvar wake for settle-fences)
/// when the worker is done with the request — **including** when the
/// evaluation panics, so a poison query can never leave a stuck
/// in-flight mark or a leaked cancellation flag behind.
struct InflightGuard<'a> {
    shared: &'a Shared,
    trace_id: u64,
}

impl<'a> InflightGuard<'a> {
    fn new(shared: &'a Shared, trace_id: u64) -> Self {
        lock_sane(&shared.inflight.set).insert(trace_id);
        Self { shared, trace_id }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        lock_sane(&self.shared.cancels).remove(&self.trace_id);
        lock_sane(&self.shared.inflight.set).remove(&self.trace_id);
        self.shared.inflight.settled.notify_all();
    }
}

/// The serving tier: worker pool + admission queue + shared cache around
/// one `SpateFramework`.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    monitor_thread: Mutex<Option<JoinHandle<()>>>,
    /// Server-side endpoints, closed on shutdown to unblock readers.
    conn_endpoints: Mutex<Vec<Endpoint>>,
}

/// Connection ids are allocated process-wide, not per server: the flight
/// recorder is process-global and trace ids embed the conn id, so two
/// servers in one process (tests) must never mint colliding trace ids.
static NEXT_CONN: AtomicU64 = AtomicU64::new(0);

impl Server {
    /// Take ownership of a framework and start serving. The cache
    /// invalidator is registered before the framework becomes shared, so
    /// no mutation can ever slip past the cache.
    pub fn start(mut fw: SpateFramework, config: ServeConfig) -> Self {
        let cache = Arc::new(EpochCache::new(CacheConfig {
            shards: config.cache_shards,
            capacity_per_shard: config.cache_capacity_per_shard,
        }));
        fw.add_observer(Arc::new(CacheInvalidator(cache.clone())));
        let shared = Arc::new(Shared {
            fw: RwLock::new(fw),
            cache,
            queue: AdmissionQueue::new(AdmissionConfig {
                interactive_depth: config.interactive_depth,
                scan_depth: config.scan_depth,
            }),
            stats: StatsCells::default(),
            sessions: Mutex::new(HashMap::new()),
            lat_interactive: obs::histogram_labeled(
                "serve.latency_us",
                &[("class", "interactive")],
            ),
            lat_scan: obs::histogram_labeled("serve.latency_us", &[("class", "scan")]),
            monitor: Mutex::new(MetaMonitor::new(config.meta)),
            profiles: Mutex::new(ProfileStore::new(config.profile_history)),
            inflight: Inflight::default(),
            cancels: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            config: config.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                // Self-healing worker: request evaluation is individually
                // panic-isolated inside `serve_one`, and anything that
                // still escapes (pool plumbing itself) lands here, where
                // the loop restarts instead of silently shrinking the
                // pool one panic at a time.
                std::thread::spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))) {
                        Ok(()) => break, // queue closed: clean shutdown
                        Err(_) => {
                            shared.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                            obs::inc("serve.worker.respawns");
                        }
                    }
                })
            })
            .collect();
        let monitor_thread = config.monitor_interval.map(|interval| {
            let shared = shared.clone();
            std::thread::spawn(move || monitor_loop(&shared, interval))
        });
        Self {
            shared,
            workers: Mutex::new(workers),
            readers: Mutex::new(Vec::new()),
            monitor_thread: Mutex::new(monitor_thread),
            conn_endpoints: Mutex::new(Vec::new()),
        }
    }

    /// Accept a new client connection; returns the client's endpoint
    /// wrapper. Spawns the per-connection reader thread.
    pub fn connect(&self) -> ClientConn {
        let (client_ep, server_ep) = duplex();
        let conn = NEXT_CONN.fetch_add(1, Ordering::Relaxed) + 1;
        lock_sane(&self.conn_endpoints).push(server_ep.clone());
        let shared = self.shared.clone();
        let reader = std::thread::spawn(move || reader_loop(&shared, conn, server_ep));
        lock_sane(&self.readers).push(reader);
        ClientConn {
            ep: client_ep,
            conn_id: conn,
            next_id: 0,
        }
    }

    /// Operator-side ingest: exclusive access; the cache invalidation
    /// hooks fire inside.
    pub fn ingest(&self, snapshot: &Snapshot) -> IngestStats {
        let mut fw = write_sane(&self.shared.fw);
        fw.ingest(snapshot)
    }

    /// Operator-side decay pass at a given "now"; evicted epochs drop
    /// out of the shared cache before any reader can run again.
    pub fn run_decay(&self, now: EpochId) -> DecayReport {
        let mut fw = write_sane(&self.shared.fw);
        fw.run_decay(now)
    }

    /// Current staleness version of the owned framework.
    pub fn version(&self) -> u64 {
        read_sane(&self.shared.fw).version()
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            queries: s.queries.load(Ordering::Relaxed),
            rows_streamed: s.rows_streamed.load(Ordering::Relaxed),
            shed_overflow: s.shed_overflow.load(Ordering::Relaxed),
            shed_deadline: s.shed_deadline.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            deadline_expired: s.deadline_expired.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
        }
    }

    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Advance the meta-highlights monitor one window: sample every
    /// telemetry stream, feed the θ-rarity tables, return what fired.
    /// Deterministic harnesses call this at barrier points instead of
    /// configuring [`ServeConfig::monitor_interval`].
    pub fn monitor_tick(&self) -> Vec<AnomalyRecord> {
        lock_sane(&self.shared.monitor).tick(obs::global())
    }

    /// Monitor counters so far (ticks, anomalies, deterministic subset).
    pub fn meta_summary(&self) -> MetaSummary {
        lock_sane(&self.shared.monitor).summary()
    }

    /// Recent anomaly records, oldest first (bounded history).
    pub fn anomalies(&self) -> Vec<AnomalyRecord> {
        lock_sane(&self.shared.monitor).recent()
    }

    /// Heat report of the owned framework's temporal index: hot/warm/cold
    /// epoch bands accumulated from every served query and cache touch.
    pub fn heat_report(&self) -> spate_core::HeatReport {
        read_sane(&self.shared.fw).index().heat().report()
    }

    /// The finished [`CostProfile`] of a served request, if still
    /// retained; `trace_id == 0` means "the most recent request".
    pub fn profile(&self, trace_id: u64) -> Option<CostProfile> {
        if trace_id != 0 {
            await_settled(&self.shared, trace_id);
        }
        let store = lock_sane(&self.shared.profiles);
        let resolved = if trace_id == 0 {
            store.latest
        } else {
            trace_id
        };
        store.profiles.get(&resolved).cloned()
    }

    /// Graceful shutdown: stop admitting, drain queued work, join the
    /// pool, hang up every connection. Returns the final stats.
    pub fn shutdown(self) -> ServeStats {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        for w in lock_sane(&self.workers).drain(..) {
            let _ = w.join();
        }
        if let Some(m) = lock_sane(&self.monitor_thread).take() {
            let _ = m.join();
        }
        for ep in lock_sane(&self.conn_endpoints).drain(..) {
            ep.close_both();
        }
        for r in lock_sane(&self.readers).drain(..) {
            let _ = r.join();
        }
        self.stats()
    }
}

/// Optional background driver of the meta-highlights monitor.
fn monitor_loop(shared: &Shared, interval: Duration) {
    while !shared.stop.load(Ordering::Relaxed) {
        // Sleep in small slices so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.stop.load(Ordering::Relaxed) {
            let slice = Duration::from_millis(10).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        lock_sane(&shared.monitor).tick(obs::global());
    }
}

// ------------------------------------------------------------- reader side

fn classify(config: &ServeConfig, body: &RequestBody) -> Class {
    if body.window_len() > config.interactive_max_window {
        Class::Scan
    } else {
        Class::Interactive
    }
}

fn reader_loop(shared: &Shared, conn: u64, ep: Endpoint) {
    loop {
        match ep.recv_request() {
            Ok(Some(request)) => {
                // Cancellation is fire-and-forget: flip the target's flag
                // if it is still pending on this connection and move on —
                // no reply frame, and the cancelled request itself still
                // terminates normally (typically with a Partial answer).
                if let RequestBody::Cancel { target } = &request.body {
                    let target_trace = trace_id_for(conn, *target);
                    match lock_sane(&shared.cancels).get(&target_trace) {
                        Some(flag) => {
                            flag.cancel();
                            obs::inc("serve.cancel.delivered");
                        }
                        None => obs::inc("serve.cancel.unknown"),
                    }
                    continue;
                }
                // Control-plane frames are answered right here on the
                // reader thread: they never queue, so introspection works
                // even while the admission queue is shedding.
                if request.body.is_control() {
                    let _ = answer_control(shared, &ep, &request);
                    continue;
                }
                let class = classify(&shared.config, &request.body);
                let id = request.id;
                let trace_id = trace_id_for(conn, id);
                obs::trace::instant_for(
                    trace_id,
                    "admission.enqueue",
                    &[
                        ("class", class.label()),
                        ("queue_depth", &shared.queue.depth().to_string()),
                    ],
                );
                // Register the cancellation flag before the job can be
                // popped, so a Cancel racing the worker still lands.
                let cancel = CancelFlag::new();
                lock_sane(&shared.cancels).insert(trace_id, cancel.clone());
                let job = Job {
                    conn,
                    endpoint: ep.clone(),
                    request,
                    queued_at: Instant::now(),
                    trace_id,
                    cancel,
                };
                if let Err(shed) = shared.queue.push(conn, class, job) {
                    lock_sane(&shared.cancels).remove(&trace_id);
                    shared.stats.shed_overflow.fetch_add(1, Ordering::Relaxed);
                    obs::trace::instant_for(
                        trace_id,
                        "admission.shed_overflow",
                        &[("queue_depth", &shed.queue_depth.to_string())],
                    );
                    let _ = ep.send_response(&Response {
                        id,
                        body: ResponseBody::Shed {
                            queue_depth: shed.queue_depth,
                        },
                    });
                }
            }
            Ok(None) => break, // client hung up cleanly
            Err(TransportError::Closed) => break,
            Err(TransportError::Proto(e)) => {
                // A malformed frame poisons the byte stream (we can no
                // longer find the next frame boundary): report and drop
                // the connection rather than guessing.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.protocol_errors");
                let _ = ep.send_response(&Response {
                    id: 0,
                    body: ResponseBody::Error {
                        code: errcode::BAD_REQUEST,
                        message: e.to_string(),
                    },
                });
                ep.close();
                break;
            }
        }
    }
}

// ------------------------------------------------------------- worker side

fn worker_loop(shared: &Shared) {
    while let Some((_client, class, job)) = shared.queue.pop() {
        if job.queued_at.elapsed() > shared.config.queue_deadline {
            lock_sane(&shared.cancels).remove(&job.trace_id);
            shared.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            obs::inc("serve.shed.deadline");
            obs::trace::instant_for(job.trace_id, "admission.shed_deadline", &[]);
            let _ = job.endpoint.send_response(&Response {
                id: job.request.id,
                body: ResponseBody::Shed {
                    queue_depth: shared.queue.depth() as u32,
                },
            });
            continue;
        }
        serve_one(shared, class, job);
    }
}

fn serve_one(shared: &Shared, class: Class, job: Job) {
    // Mark the request in flight before any frame leaves. The terminal
    // frame is sent inside dispatch, *before* the span guard drops and
    // the profile is recorded; the guard's removal happens after both,
    // so the reader thread's `Trace`/`Profile` fence (`await_settled`)
    // gives clients a real guarantee instead of a race.
    let trace_id = job.trace_id;
    let _inflight = InflightGuard::new(shared, trace_id);
    let t0 = Instant::now();
    {
        // Install the trace context minted at admission: every span/event
        // on this thread until the guard drops files under the request's
        // trace.
        let _trace = obs::trace::begin(trace_id);
        // The queue wait was measured by timestamps on another thread;
        // file it as an already-closed root span so the tree answers "how
        // long did R sit in admission" next to "how long did R evaluate".
        let waited = job.queued_at.elapsed();
        let wait_ns = waited.as_nanos().min(u128::from(u64::MAX)) as u64;
        obs::trace::span_event(
            "admission.wait",
            obs::flight::now_ns().saturating_sub(wait_ns),
            wait_ns,
            &[("class", class.label())],
        );
        let _span = obs::span("serve.request");
        let id = job.request.id;
        // Counted before the answer streams so a client that saw its
        // reply and immediately asks for Stats reads its own request in
        // the count.
        shared.stats.queries.fetch_add(1, Ordering::Relaxed);
        obs::inc("serve.queries");
        // The end-to-end budget runs from *admission*, not from pop:
        // queue wait spends a request's deadline exactly like evaluation
        // does. `deadline_ms == 0` means no deadline.
        let deadline = job
            .request
            .body
            .deadline_ms()
            .filter(|&ms| ms > 0)
            .map(|ms| job.queued_at + Duration::from_millis(ms));
        let _budget = obs::budget::begin(deadline, job.cancel.clone());
        // Evaluation is panic-isolated: a poison query ends as an Error
        // terminal frame on its own connection; the worker, the shared
        // locks and every other request keep going.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Account every byte/row/epoch this request costs; the
            // finished profile is retained for the Profile control frame.
            let cost = obs::cost::begin(trace_id);
            let sent = match &job.request.body {
                RequestBody::Explore {
                    attributes,
                    bbox,
                    window,
                    ..
                } => serve_explore(
                    shared,
                    &job.endpoint,
                    id,
                    job.conn,
                    attributes,
                    *bbox,
                    *window,
                ),
                RequestBody::Sql { window, sql, .. } => {
                    serve_sql(shared, &job.endpoint, id, *window, sql)
                }
                RequestBody::Stats
                | RequestBody::Trace { .. }
                | RequestBody::Profile { .. }
                | RequestBody::Cancel { .. } => {
                    unreachable!("control frames are answered on the reader thread")
                }
            };
            lock_sane(&shared.profiles).record(cost.finish());
            // A send error means the client vanished mid-answer; nothing
            // to do.
            let _ = sent;
        }));
        if outcome.is_err() {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            obs::inc("serve.panics");
            obs::trace::instant_for(trace_id, "serve.panic_isolated", &[]);
            let _ = job.endpoint.send_response(&Response {
                id,
                body: ResponseBody::Error {
                    code: errcode::INTERNAL,
                    message: "internal error: query evaluation panicked (isolated)".into(),
                },
            });
        }
        // File how the budget ended while the guard is still installed.
        match obs::budget::interrupted() {
            Some(Interrupt::Cancelled) => {
                shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.cancelled");
            }
            Some(Interrupt::DeadlineExceeded) => {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                obs::inc("serve.deadline.expired");
            }
            None => {}
        }
        // `_span` and `_trace` drop here: the request's span tree is
        // fully filed before the in-flight mark clears.
    }
    let micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    match class {
        Class::Interactive => shared.lat_interactive.record(micros),
        Class::Scan => shared.lat_scan.record(micros),
    }
    // `_inflight` drops last: settle-fences release only after the span
    // tree, the profile and the latency sample have all landed.
}

/// Wait (bounded) until `trace_id` is no longer being served, so a
/// `Trace`/`Profile` reply reflects the request's complete span tree and
/// recorded profile. In the synchronous client pattern the awaited
/// request has already sent its terminal frame, so this settles in
/// microseconds; the worker's in-flight guard wakes the condvar on every
/// removal, and the bound keeps a worker stalled on a slow client from
/// ever wedging the reader thread.
fn await_settled(shared: &Shared, trace_id: u64) {
    shared
        .inflight
        .await_settled(trace_id, Duration::from_millis(50));
}

/// Answer an introspection frame in place (reader thread, no admission).
fn answer_control(shared: &Shared, ep: &Endpoint, request: &Request) -> Result<(), TransportError> {
    let body = match &request.body {
        RequestBody::Stats => {
            let (qi, qs) = shared.queue.depths();
            let cache = shared.cache.stats();
            let (summary, recent) = {
                let m = lock_sane(&shared.monitor);
                (m.summary(), m.recent())
            };
            let anomalies = recent
                .into_iter()
                .map(|a| AnomalyWire {
                    tick: a.tick,
                    stream: a.stream.to_string(),
                    category: a.category,
                    share_milli: (a.share * 1000.0).round().min(f64::from(u32::MAX)) as u32,
                    deterministic: a.kind == spate_core::StreamKind::Deterministic,
                })
                .collect();
            let counters = obs::global()
                .counters_snapshot()
                .into_iter()
                .map(|(name, c)| (name, c.get()))
                .collect();
            let s = &shared.stats;
            ResponseBody::Stats(StatsFrame {
                queries: s.queries.load(Ordering::Relaxed),
                rows_streamed: s.rows_streamed.load(Ordering::Relaxed),
                shed_overflow: s.shed_overflow.load(Ordering::Relaxed),
                shed_deadline: s.shed_deadline.load(Ordering::Relaxed),
                protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
                queue_interactive: qi as u32,
                queue_scan: qs as u32,
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                cache_evictions: cache.evictions,
                cache_invalidations: cache.invalidations,
                meta_ticks: summary.ticks,
                anomalies_total: summary.anomalies_total,
                anomalies_deterministic: summary.anomalies_deterministic,
                anomalies,
                counters,
            })
        }
        RequestBody::Trace { trace_id } => {
            let resolved = if *trace_id == 0 {
                obs::flight().latest_trace_id().unwrap_or(0)
            } else {
                *trace_id
            };
            await_settled(shared, resolved);
            let spans = obs::flight()
                .trace(resolved)
                .into_iter()
                .map(|e| SpanWire {
                    span_id: e.span_id,
                    parent_id: e.parent_id,
                    name: e.name,
                    start_us: e.start_ns / 1_000,
                    dur_us: e.dur_ns / 1_000,
                    instant: e.kind == EventKind::Instant,
                    args: e.args,
                })
                .collect();
            ResponseBody::Trace(TraceFrame {
                trace_id: resolved,
                spans,
            })
        }
        RequestBody::Profile { trace_id } => {
            // id 0 resolves to the latest *recorded* profile, which is
            // consistent by definition; a specific id fences first.
            if *trace_id != 0 {
                await_settled(shared, *trace_id);
            }
            let (resolved, metrics) = lock_sane(&shared.profiles).lookup(*trace_id);
            ResponseBody::Profile(ProfileFrame {
                trace_id: resolved,
                metrics,
            })
        }
        _ => unreachable!("answer_control is only called for control frames"),
    };
    ep.send_response(&Response {
        id: request.id,
        body,
    })
}

fn serve_explore(
    shared: &Shared,
    ep: &Endpoint,
    id: u64,
    conn: u64,
    attributes: &[String],
    bbox: (f64, f64, f64, f64),
    window: (u32, u32),
) -> Result<(), TransportError> {
    if window.0 > window.1 || bbox.0 > bbox.2 || bbox.1 > bbox.3 {
        return send_error(ep, id, errcode::BAD_REQUEST, "inverted window or bbox");
    }
    // Chaos-drill poison query: panic inside evaluation, on purpose,
    // to prove the worker's isolation boundary holds. Gated off by
    // default; `CHAOS_PANIC_ATTRIBUTE` is otherwise an ordinary
    // (unknown, hence empty) attribute name.
    if shared.config.chaos_poison && attributes.iter().any(|a| a == CHAOS_PANIC_ATTRIBUTE) {
        panic!("chaos drill: poison query requested a worker panic");
    }
    // Chaos-drill stall: model a slow storage tier under the evaluation,
    // so a small nonzero deadline has deterministically expired by the
    // first per-epoch checkpoint.
    if shared.config.chaos_poison && attributes.iter().any(|a| a == CHAOS_STALL_ATTRIBUTE) {
        std::thread::sleep(CHAOS_STALL);
    }
    let attrs: Vec<&str> = attributes.iter().map(String::as_str).collect();
    let q = Query::new(&attrs, BoundingBox::new(bbox.0, bbox.1, bbox.2, bbox.3))
        .with_epoch_range(window.0, window.1);
    let result = {
        let fw = read_sane(&shared.fw);
        let result = evaluate_cached(&fw, &shared.cache, &q);
        if shared.config.prefetch {
            prefetch(shared, conn, window, &fw);
        }
        result
        // Read guard drops here: streaming happens without holding the
        // framework, so a slow client never blocks ingest/decay.
    };
    match result {
        QueryResult::Exact(exact) => stream_exact(shared, ep, id, &exact, None),
        QueryResult::Partial {
            result, coverage, ..
        } => stream_exact(shared, ep, id, &result, Some(coverage)),
        QueryResult::Summary {
            resolution,
            highlights,
        } => {
            ep.send_response(&Response {
                id,
                body: ResponseBody::Summary {
                    resolution: resolution.label().to_string(),
                    cdr_records: highlights.cdr_records,
                    nms_records: highlights.nms_records,
                    cells: highlights.per_cell.len() as u32,
                },
            })?;
            ep.send_response(&Response {
                id,
                body: ResponseBody::Done { rows: 0 },
            })
        }
        QueryResult::Unavailable => ep.send_response(&Response {
            id,
            body: ResponseBody::Unavailable,
        }),
    }
}

fn serve_sql(
    shared: &Shared,
    ep: &Endpoint,
    id: u64,
    window: (u32, u32),
    sql: &str,
) -> Result<(), TransportError> {
    if window.0 > window.1 {
        return send_error(ep, id, errcode::BAD_REQUEST, "inverted window");
    }
    let outcome = {
        let fw = read_sane(&shared.fw);
        let view = CachedView {
            fw: &fw,
            cache: &shared.cache,
        };
        spate_sql::execute_over(&view, EpochId(window.0), EpochId(window.1), sql)
    };
    match outcome {
        Ok(rs) => {
            ep.send_response(&Response {
                id,
                body: ResponseBody::Header {
                    tables: vec![TableHeader {
                        name: "RESULT".into(),
                        columns: rs.columns.clone(),
                    }],
                },
            })?;
            let total = rs.rows.len() as u64;
            for chunk in rs.rows.chunks(CHUNK_ROWS) {
                ep.send_response(&Response {
                    id,
                    body: ResponseBody::RowChunk {
                        table: 0,
                        rows: chunk.to_vec(),
                    },
                })?;
            }
            shared
                .stats
                .rows_streamed
                .fetch_add(total, Ordering::Relaxed);
            obs::add("serve.rows_streamed", total);
            ep.send_response(&Response {
                id,
                body: ResponseBody::Done { rows: total },
            })
        }
        Err(e) => send_error(ep, id, errcode::SQL, &e.to_string()),
    }
}

fn send_error(ep: &Endpoint, id: u64, code: u8, message: &str) -> Result<(), TransportError> {
    obs::inc("serve.request_errors");
    ep.send_response(&Response {
        id,
        body: ResponseBody::Error {
            code,
            message: message.to_string(),
        },
    })
}

/// Stream an exact/partial result: header, CDR chunks, NMS chunks,
/// optional coverage, done.
fn stream_exact(
    shared: &Shared,
    ep: &Endpoint,
    id: u64,
    exact: &ExactResult,
    coverage: Option<Coverage>,
) -> Result<(), TransportError> {
    ep.send_response(&Response {
        id,
        body: ResponseBody::Header {
            tables: vec![
                TableHeader {
                    name: "CDR".into(),
                    columns: exact.cdr.column_names.clone(),
                },
                TableHeader {
                    name: "NMS".into(),
                    columns: exact.nms.column_names.clone(),
                },
            ],
        },
    })?;
    for (table, slice) in [(0u8, &exact.cdr), (1u8, &exact.nms)] {
        for chunk in slice.rows.chunks(CHUNK_ROWS) {
            ep.send_response(&Response {
                id,
                body: ResponseBody::RowChunk {
                    table,
                    rows: chunk.to_vec(),
                },
            })?;
        }
    }
    if let Some(c) = coverage {
        ep.send_response(&Response {
            id,
            body: ResponseBody::Coverage {
                requested: c.requested,
                served: c.served,
                decayed: c.decayed,
                unavailable: c.unavailable,
            },
        })?;
    }
    let total = (exact.cdr.rows.len() + exact.nms.rows.len()) as u64;
    shared
        .stats
        .rows_streamed
        .fetch_add(total, Ordering::Relaxed);
    obs::add("serve.rows_streamed", total);
    ep.send_response(&Response {
        id,
        body: ResponseBody::Done { rows: total },
    })
}

/// Warm the cache ahead of this session's window. `ExplorerSession`
/// exploits *containment* (zoom-ins re-use the cached wide window); the
/// serving-tier generalization adds *look-ahead*: after serving
/// `[a, b]`, the epochs just past `b` are decompressed into the shared
/// cache, betting on the pan-forward exploration pattern. Skipped when
/// the window is contained in the session's previous one (zoom-in — the
/// cache is already warm there).
fn prefetch(shared: &Shared, conn: u64, window: (u32, u32), fw: &SpateFramework) {
    // Speculation never spends a request's remaining budget: a request
    // that was cancelled or ran out of deadline skips the warm-up.
    if obs::budget::interrupted().is_some() {
        return;
    }
    let _span = obs::span("serve.prefetch");
    // Speculative work: collect its cost into a throwaway profile so the
    // triggering request's EXPLAIN ANALYZE shows only its own bytes.
    let _cost = obs::cost::begin(0);
    let contained = {
        let mut sessions = lock_sane(&shared.sessions);
        let prev = sessions.insert(conn, window);
        prev.is_some_and(|(a, b)| a <= window.0 && window.1 <= b)
    };
    if contained {
        return;
    }
    let Some(last) = fw.index().last_epoch() else {
        return;
    };
    let ahead = shared
        .config
        .prefetch_lookahead
        .min(window.1.saturating_sub(window.0) + 1);
    let from = window.1.saturating_add(1);
    let to = window.1.saturating_add(ahead).min(last.0);
    for e in from..=to {
        let epoch = EpochId(e);
        if shared.cache.get(epoch).is_none() {
            if let Some(snap) = fw.load_epoch(epoch) {
                shared.cache.insert(epoch, Arc::new(snap));
                obs::inc("serve.prefetch");
            }
        }
    }
}

// -------------------------------------------------------------- evaluation

/// The cache-aware twin of `SpateFramework::query`: identical covering
/// semantics, but exact-branch epochs are resolved through the shared
/// cache and projected straight out of `Arc<Snapshot>` entries. Must be
/// called under the framework read lock (cache coherence contract).
fn evaluate_cached(fw: &SpateFramework, cache: &EpochCache, q: &Query) -> QueryResult {
    let _span = obs::span("serve.evaluate");
    let heat = fw.index().heat();
    for attr in &q.attributes {
        heat.touch_attribute(attr);
    }
    match fw.index().find_covering(q.window.0, q.window.1) {
        Covering::Exact(leaves) => {
            let requested = leaves.len() as u32;
            let mut arcs: Vec<Arc<Snapshot>> = Vec::with_capacity(leaves.len());
            let mut unavailable = 0u32;
            let traced = obs::trace::current().is_some();
            for (resolved, leaf) in leaves.iter().enumerate() {
                // Cooperative budget checkpoint at every epoch boundary:
                // on cancellation or deadline expiry, stop scanning and
                // report everything unresolved as honestly unavailable —
                // the caller answers Partial instead of overrunning.
                if obs::budget::interrupted().is_some() {
                    obs::inc("serve.scan.interrupted");
                    if traced {
                        obs::trace::event(
                            "budget.interrupted",
                            &[("epochs_left", &(leaves.len() - resolved).to_string())],
                        );
                    }
                    unavailable += (leaves.len() - resolved) as u32;
                    break;
                }
                if let Some(hit) = cache.get(leaf.epoch) {
                    heat.record_cache(leaf.epoch, true);
                    obs::cost::touch_epoch(u64::from(leaf.epoch.0));
                    if traced {
                        obs::trace::event("cache.hit", &[("epoch", &leaf.epoch.0.to_string())]);
                    }
                    arcs.push(hit);
                } else {
                    heat.record_cache(leaf.epoch, false);
                    if traced {
                        obs::trace::event("cache.miss", &[("epoch", &leaf.epoch.0.to_string())]);
                    }
                    match fw.load_epoch(leaf.epoch) {
                        Some(snap) => {
                            let arc = Arc::new(snap);
                            cache.insert(leaf.epoch, arc.clone());
                            arcs.push(arc);
                        }
                        None => unavailable += 1,
                    }
                }
            }
            let result = project_snapshot_refs(arcs.iter().map(Arc::as_ref), q, fw.layout());
            if unavailable == 0 {
                QueryResult::Exact(result)
            } else {
                QueryResult::Partial {
                    result,
                    coverage: Coverage {
                        requested,
                        served: requested - unavailable,
                        decayed: 0,
                        unavailable,
                    },
                }
            }
        }
        Covering::Summary {
            resolution,
            highlights,
        } => {
            let cells: HashSet<u32> = fw.layout().cells_in(&q.bbox).into_iter().collect();
            QueryResult::Summary {
                resolution,
                highlights: highlights.filter_cells(&cells),
            }
        }
        Covering::Unavailable => QueryResult::Unavailable,
    }
}

/// Read-only [`ExplorationFramework`] view routing `load_epoch`/`scan`
/// through the shared cache — how the SQL executor (which materializes
/// tables via `scan`) shares cached decompressions with the explore
/// path. Holds the framework read guard for its lifetime by borrowing.
struct CachedView<'a> {
    fw: &'a SpateFramework,
    cache: &'a EpochCache,
}

impl ExplorationFramework for CachedView<'_> {
    fn name(&self) -> &'static str {
        "SPATE-serve"
    }

    fn layout(&self) -> &CellLayout {
        self.fw.layout()
    }

    fn ingest(&mut self, _snapshot: &Snapshot) -> IngestStats {
        unreachable!("the serving view is read-only; ingest goes through Server::ingest")
    }

    fn space(&self) -> SpaceReport {
        self.fw.space()
    }

    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot> {
        // Budget checkpoint on the SQL scan path: an interrupted request
        // sees the remaining epochs as unavailable, the same degraded
        // (never wrong, only narrower) answer the explore path gives.
        if obs::budget::interrupted().is_some() {
            obs::inc("serve.scan.interrupted");
            return None;
        }
        if let Some(hit) = self.cache.get(epoch) {
            self.fw.index().heat().record_cache(epoch, true);
            obs::cost::touch_epoch(u64::from(epoch.0));
            return Some((*hit).clone());
        }
        self.fw.index().heat().record_cache(epoch, false);
        let snap = self.fw.load_epoch(epoch)?;
        self.cache.insert(epoch, Arc::new(snap.clone()));
        Some(snap)
    }

    fn query(&self, q: &Query) -> QueryResult {
        evaluate_cached(self.fw, self.cache, q)
    }

    fn version(&self) -> u64 {
        self.fw.version()
    }
}

// ------------------------------------------------------------- client side

/// Client-side terminal outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Exact (or partial, when `coverage` is set) rows, per table.
    Rows {
        tables: Vec<TableHeader>,
        /// Row chunks reassembled, indexed like `tables`.
        rows: Vec<Vec<Vec<telco_trace::record::Value>>>,
        coverage: Option<Coverage>,
        total_rows: u64,
    },
    /// Highlights digest of a decayed window.
    Summary {
        resolution: String,
        cdr_records: u64,
        nms_records: u64,
        cells: u32,
    },
    /// Load-shed; retry later.
    Shed {
        queue_depth: u32,
    },
    Unavailable,
    /// Server-side failure.
    ServerError {
        code: u8,
        message: String,
    },
    /// Live introspection snapshot (stats + meta-highlights anomalies).
    Stats(StatsFrame),
    /// One request's span tree out of the flight recorder.
    Trace(TraceFrame),
    /// One request's cost profile (EXPLAIN ANALYZE over the wire).
    Profile(ProfileFrame),
}

impl Reply {
    pub fn is_shed(&self) -> bool {
        matches!(self, Reply::Shed { .. })
    }

    /// Exact rows carried (0 for summaries/sheds).
    pub fn total_rows(&self) -> u64 {
        match self {
            Reply::Rows { total_rows, .. } => *total_rows,
            _ => 0,
        }
    }
}

/// A client connection: synchronous request/reply over the duplex
/// channel. One request in flight at a time (the protocol supports
/// pipelining; this convenience wrapper doesn't need it).
pub struct ClientConn {
    ep: Endpoint,
    conn_id: u64,
    next_id: u64,
}

impl ClientConn {
    /// The server-assigned connection id (the high half of trace ids).
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The trace id the server filed our most recent request under, or
    /// `None` before the first request. Feed it to [`ClientConn::trace`]
    /// to ask "why was that request slow".
    pub fn last_trace_id(&self) -> Option<u64> {
        (self.next_id > 0).then(|| trace_id_for(self.conn_id, self.next_id))
    }

    /// Fetch the server's live stats snapshot (answered on the reader
    /// thread — works even while the admission queue sheds).
    pub fn stats(&mut self) -> Result<StatsFrame, TransportError> {
        match self.roundtrip(RequestBody::Stats)? {
            Reply::Stats(frame) => Ok(frame),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetch one trace's span tree; `trace_id == 0` means "the latest
    /// trace the server recorded".
    pub fn trace(&mut self, trace_id: u64) -> Result<TraceFrame, TransportError> {
        match self.roundtrip(RequestBody::Trace { trace_id })? {
            Reply::Trace(frame) => Ok(frame),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetch one request's cost profile; `trace_id == 0` means "the most
    /// recently profiled request". Unknown/evicted ids answer with an
    /// empty metrics list.
    pub fn profile(&mut self, trace_id: u64) -> Result<ProfileFrame, TransportError> {
        match self.roundtrip(RequestBody::Profile { trace_id })? {
            Reply::Profile(frame) => Ok(frame),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Run an exploration query `Q(a, b, w)` with no deadline.
    pub fn explore(
        &mut self,
        attributes: &[&str],
        bbox: BoundingBox,
        window: (u32, u32),
    ) -> Result<Reply, TransportError> {
        self.explore_with_deadline(attributes, bbox, window, 0)
    }

    /// Run an exploration query under an end-to-end deadline measured
    /// from admission; `deadline_ms == 0` means no deadline. An expired
    /// deadline degrades the answer to a `Partial` with honest coverage
    /// rather than an error.
    pub fn explore_with_deadline(
        &mut self,
        attributes: &[&str],
        bbox: BoundingBox,
        window: (u32, u32),
        deadline_ms: u64,
    ) -> Result<Reply, TransportError> {
        let body = RequestBody::Explore {
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
            bbox: (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y),
            window,
            deadline_ms,
        };
        self.roundtrip(body)
    }

    /// Run a SPATE-SQL statement over a window, with no deadline.
    pub fn sql(&mut self, window: (u32, u32), sql: &str) -> Result<Reply, TransportError> {
        self.sql_with_deadline(window, sql, 0)
    }

    /// Run a SPATE-SQL statement under an end-to-end deadline (see
    /// [`ClientConn::explore_with_deadline`]).
    pub fn sql_with_deadline(
        &mut self,
        window: (u32, u32),
        sql: &str,
        deadline_ms: u64,
    ) -> Result<Reply, TransportError> {
        self.roundtrip(RequestBody::Sql {
            window,
            sql: sql.to_string(),
            deadline_ms,
        })
    }

    /// Send a request without waiting for its answer; returns the
    /// request id to pass to [`ClientConn::await_reply`]. This is how a
    /// caller gets a request in flight so that a [`ClientConn::cancel`]
    /// has something to interrupt.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, TransportError> {
        self.next_id += 1;
        let id = self.next_id;
        self.ep.send_request(&Request { id, body })?;
        Ok(id)
    }

    /// Fire-and-forget cancellation of an earlier request by its id.
    /// There is no reply: the cancelled request still terminates through
    /// its ordinary terminal frame (typically `Partial` coverage). A
    /// target that already finished (or never existed) is a no-op.
    pub fn cancel(&mut self, target: u64) -> Result<(), TransportError> {
        self.next_id += 1;
        let id = self.next_id;
        self.ep.send_request(&Request {
            id,
            body: RequestBody::Cancel { target },
        })
    }

    /// Inject raw bytes into the server-bound stream (chaos drills:
    /// malformed frames, half-frames, garbage).
    pub fn send_raw(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.ep.send_bytes(bytes)
    }

    fn roundtrip(&mut self, body: RequestBody) -> Result<Reply, TransportError> {
        let id = self.send(body)?;
        self.await_reply(id)
    }

    /// Collect frames until request `id`'s terminal frame arrives.
    pub fn await_reply(&mut self, id: u64) -> Result<Reply, TransportError> {
        let mut tables: Vec<TableHeader> = Vec::new();
        let mut rows: Vec<Vec<Vec<telco_trace::record::Value>>> = Vec::new();
        let mut coverage: Option<Coverage> = None;
        loop {
            let Some(resp) = self.ep.recv_response()? else {
                return Err(TransportError::Closed);
            };
            if resp.id != id {
                // Not ours (stale frame from an aborted request); the
                // synchronous wrapper never has two in flight, so this
                // is a protocol violation.
                return Err(TransportError::Proto(crate::proto::ProtoError::BadTag(0)));
            }
            match resp.body {
                ResponseBody::Header { tables: t } => {
                    rows = t.iter().map(|_| Vec::new()).collect();
                    tables = t;
                }
                ResponseBody::RowChunk { table, rows: chunk } => {
                    if let Some(bucket) = rows.get_mut(table as usize) {
                        bucket.extend(chunk);
                    }
                }
                ResponseBody::Coverage {
                    requested,
                    served,
                    decayed,
                    unavailable,
                } => {
                    coverage = Some(Coverage {
                        requested,
                        served,
                        decayed,
                        unavailable,
                    });
                }
                ResponseBody::Summary {
                    resolution,
                    cdr_records,
                    nms_records,
                    cells,
                } => {
                    // Terminal Done follows; keep reading.
                    let done = self.ep.recv_response()?;
                    debug_assert!(matches!(
                        done,
                        Some(Response {
                            body: ResponseBody::Done { .. },
                            ..
                        })
                    ));
                    return Ok(Reply::Summary {
                        resolution,
                        cdr_records,
                        nms_records,
                        cells,
                    });
                }
                ResponseBody::Done { rows: total_rows } => {
                    return Ok(Reply::Rows {
                        tables,
                        rows,
                        coverage,
                        total_rows,
                    });
                }
                ResponseBody::Shed { queue_depth } => return Ok(Reply::Shed { queue_depth }),
                ResponseBody::Error { code, message } => {
                    return Ok(Reply::ServerError { code, message })
                }
                ResponseBody::Unavailable => return Ok(Reply::Unavailable),
                ResponseBody::Stats(frame) => return Ok(Reply::Stats(frame)),
                ResponseBody::Trace(frame) => return Ok(Reply::Trace(frame)),
                ResponseBody::Profile(frame) => return Ok(Reply::Profile(frame)),
            }
        }
    }

    /// Hang up. The server's reader thread for this connection exits.
    pub fn close(self) {
        self.ep.close();
    }
}

fn unexpected_reply(reply: &Reply) -> TransportError {
    let _ = reply;
    TransportError::Proto(crate::proto::ProtoError::BadTag(0))
}
