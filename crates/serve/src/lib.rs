//! `spate-serve`: the concurrent serving tier over a SPATE warehouse.
//!
//! The paper's framework is a library: one process, one caller, direct
//! method calls. A telco operations floor is not like that — many
//! analysts and dashboards explore the same warehouse at once while
//! snapshots keep arriving every 30 minutes and the decay process keeps
//! evicting old epochs. This crate adds that multi-client layer without
//! leaving the hermetic, dependency-free workspace:
//!
//! * [`proto`] — a length-prefixed binary frame protocol (requests are
//!   `Q(a, b, w)` explorations or SPATE-SQL strings; responses stream in
//!   bounded chunks with explicit coverage/summary/shed outcomes).
//! * [`transport`] — an in-process duplex byte channel with socket-like
//!   semantics: backpressure, frame-atomic writes, truncation on
//!   mid-frame hangup.
//! * [`admission`] — two-priority bounded admission (interactive before
//!   scan, per-client round-robin, shed on overflow or deadline).
//! * [`cache`] — a sharded LRU cache of decompressed epochs shared by
//!   every client, kept coherent by `spate-core`'s [`StoreObserver`]
//!   mutation hooks (zero stale reads by lock order, not by TTL).
//! * [`server`] — the worker pool that ties it together, plus the
//!   synchronous [`ClientConn`] wrapper.
//!
//! Every request is traced end-to-end: admission mints a trace id
//! (`(conn << 32) | request_id`), the worker installs it as an
//! `obs::trace` context, and every span down through the framework and
//! `dfs` files into the process-global flight recorder. Two control
//! frames expose it live — [`RequestBody::Stats`] (counters, queue
//! depths, cache ratios, meta-highlights anomalies) and
//! [`RequestBody::Trace`] (one request's span tree) — both answered on
//! the reader thread so they work even mid-shed-storm. A third,
//! [`RequestBody::Profile`], returns a served request's [`obs::cost`]
//! profile (epochs touched, bytes per source/codec, rows, cache
//! outcomes, per-stage time) — `EXPLAIN ANALYZE` over the wire.
//!
//! # Quickstart
//!
//! ```
//! use spate_core::framework::{ExplorationFramework, SpateFramework};
//! use spate_serve::{Reply, ServeConfig, Server};
//! use telco_trace::cells::BoundingBox;
//! use telco_trace::{TraceConfig, TraceGenerator};
//!
//! let mut generator = TraceGenerator::new(TraceConfig::tiny());
//! let layout = generator.layout().clone();
//! let mut fw = SpateFramework::in_memory(layout);
//! for snapshot in generator.by_ref().take(4) {
//!     fw.ingest(&snapshot);
//! }
//!
//! let server = Server::start(fw, ServeConfig::default());
//! let mut client = server.connect();
//! let reply = client
//!     .explore(&["upflux"], BoundingBox::everything(), (0, 3))
//!     .unwrap();
//! assert!(matches!(reply, Reply::Rows { .. }));
//! client.close();
//! server.shutdown();
//! ```

pub mod admission;
pub mod cache;
pub mod proto;
pub mod server;
pub mod transport;

pub use admission::{AdmissionConfig, AdmissionQueue, Class};
pub use cache::{CacheConfig, CacheInvalidator, CacheStats, EpochCache};
pub use proto::{
    AnomalyWire, ProfileFrame, ProtoError, Request, RequestBody, Response, ResponseBody, SpanWire,
    StatsFrame, TableHeader, TraceFrame,
};
pub use server::{
    trace_id_for, ClientConn, Reply, ServeConfig, ServeStats, Server, CHAOS_PANIC_ATTRIBUTE,
    CHAOS_STALL_ATTRIBUTE,
};
pub use transport::{duplex, Endpoint, TransportError};

// Re-exported so the doc examples and downstream users see the hook the
// cache coherence contract is built on.
pub use spate_core::StoreObserver;
