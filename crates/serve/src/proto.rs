//! The length-prefixed binary frame protocol of the serving layer.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +------+------+---------+----------+--- ... ---+
//! | 0x53 | 0x56 | version |   kind   |  len: u32 |  payload (len bytes)
//! | 'S'  | 'V'  |  0x01   |  u8      |  LE       |
//! +------+------+---------+----------+-----------+
//! ```
//!
//! Requests are a data exploration query `Q(a, b, w)` or a SPATE-SQL
//! string scoped to a window; responses stream back in bounded chunks
//! (header, row chunks of at most [`CHUNK_ROWS`] rows, then a terminal
//! frame), so one multi-million-row scan never materializes as a single
//! frame and slow consumers exert backpressure through the transport.
//! Every payload leads with the request id it answers, so a client can
//! pipeline requests over one connection.
//!
//! Decoding is adversarial-input-hardened in the same spirit as the
//! codec containers: a forged length field beyond [`MAX_PAYLOAD`] is
//! rejected *before* any allocation, truncated frames report
//! [`ProtoError::Truncated`] rather than panicking, and trailing bytes
//! after a well-formed payload are an error (no smuggling).

use std::fmt;
use telco_trace::record::Value;

/// Protocol magic: "SV" (SPATE serVe).
pub const MAGIC: [u8; 2] = [0x53, 0x56];
/// Protocol version byte.
pub const VERSION: u8 = 0x01;
/// Frame header length: magic (2) + version (1) + kind (1) + len (4).
pub const HEADER_LEN: usize = 8;
/// Hard payload bound, enforced before allocating.
pub const MAX_PAYLOAD: usize = 4 << 20;
/// Rows per streamed response chunk.
pub const CHUNK_ROWS: usize = 256;

/// Frame kind bytes. Requests use the low range, responses the high.
pub mod kind {
    pub const EXPLORE: u8 = 0x01;
    pub const SQL: u8 = 0x02;
    /// Introspection: metric/cache/queue/anomaly snapshot.
    pub const STATS: u8 = 0x03;
    /// Introspection: one trace's span tree from the flight recorder.
    pub const TRACE: u8 = 0x04;
    /// Introspection: one request's cost profile (EXPLAIN ANALYZE over
    /// the wire).
    pub const PROFILE: u8 = 0x05;
    /// Control: cooperatively cancel an in-flight request by id.
    pub const CANCEL: u8 = 0x06;

    pub const HEADER: u8 = 0x81;
    pub const ROW_CHUNK: u8 = 0x82;
    pub const SUMMARY: u8 = 0x83;
    pub const COVERAGE: u8 = 0x84;
    pub const DONE: u8 = 0x85;
    pub const ERROR: u8 = 0x86;
    pub const SHED: u8 = 0x87;
    pub const UNAVAILABLE: u8 = 0x88;
    pub const STATS_REPLY: u8 = 0x89;
    pub const TRACE_REPLY: u8 = 0x8A;
    pub const PROFILE_REPLY: u8 = 0x8B;
}

/// Errors decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the header/payload claims (incomplete read).
    Truncated,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    BadMagic([u8; 2]),
    BadVersion(u8),
    BadKind(u8),
    BadUtf8,
    /// Unknown value/field tag inside a payload.
    BadTag(u8),
    /// Well-formed payload followed by junk bytes.
    Trailing(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on every response frame.
    pub id: u64,
    pub body: RequestBody,
}

#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// `Q(a, b, w)`: attribute selection, bounding box, epoch window.
    Explore {
        attributes: Vec<String>,
        /// `(min_x, min_y, max_x, max_y)` in meters.
        bbox: (f64, f64, f64, f64),
        /// Inclusive epoch window.
        window: (u32, u32),
        /// End-to-end deadline in milliseconds, measured from admission;
        /// `0` = no deadline. On expiry the answer degrades to `Partial`
        /// with un-scanned epochs reported as unavailable.
        deadline_ms: u64,
    },
    /// A SPATE-SQL statement scoped to an epoch window.
    Sql {
        window: (u32, u32),
        sql: String,
        /// End-to-end deadline in milliseconds (`0` = no deadline).
        deadline_ms: u64,
    },
    /// Introspection: ask for the server's live stats snapshot. Answered
    /// on the reader thread (never queued), so it works mid-shed-storm.
    Stats,
    /// Introspection: ask for one trace's span tree; `trace_id == 0`
    /// means "the most recent trace in the flight recorder".
    Trace { trace_id: u64 },
    /// Introspection: ask for the cost profile of a served request;
    /// `trace_id == 0` means "the most recently profiled request".
    Profile { trace_id: u64 },
    /// Control: cooperatively cancel the in-flight request whose
    /// client-chosen id is `target`. Answered on the reader thread and
    /// fire-and-forget: no reply frame of its own — the cancelled
    /// request still terminates normally with `Partial` coverage (or
    /// whatever frame it was about to send). Cancelling an unknown or
    /// already-finished id is a harmless no-op.
    Cancel { target: u64 },
}

impl RequestBody {
    /// The requested epoch window (data-plane request forms carry one;
    /// introspection frames do not).
    pub fn window(&self) -> Option<(u32, u32)> {
        match self {
            RequestBody::Explore { window, .. } | RequestBody::Sql { window, .. } => Some(*window),
            RequestBody::Stats
            | RequestBody::Trace { .. }
            | RequestBody::Profile { .. }
            | RequestBody::Cancel { .. } => None,
        }
    }

    /// End-to-end deadline carried by data-plane request forms (`None`
    /// for introspection/control frames, `Some(0)` = explicitly no
    /// deadline).
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            RequestBody::Explore { deadline_ms, .. } | RequestBody::Sql { deadline_ms, .. } => {
                Some(*deadline_ms)
            }
            _ => None,
        }
    }

    /// Window length in epochs (0 for introspection frames).
    pub fn window_len(&self) -> u32 {
        self.window().map_or(0, |(a, b)| b.saturating_sub(a) + 1)
    }

    /// Control-plane frames bypass admission and the worker pool.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            RequestBody::Stats
                | RequestBody::Trace { .. }
                | RequestBody::Profile { .. }
                | RequestBody::Cancel { .. }
        )
    }
}

/// One table announced by a [`ResponseBody::Header`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHeader {
    pub name: String,
    pub columns: Vec<String>,
}

/// One meta-highlights anomaly carried by a [`ResponseBody::Stats`]
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyWire {
    /// Monitor tick the anomaly fired on.
    pub tick: u64,
    pub stream: String,
    /// The rare category observed (`"burst"`, `"storm"`, ...).
    pub category: String,
    /// Relative frequency that put it under θ, in milli-units
    /// (`share * 1000`, saturated) — keeps the frame integer-only.
    pub share_milli: u32,
    /// True for deterministic-stream anomalies (the CI gate counts).
    pub deterministic: bool,
}

/// One flight-recorder event carried by a [`ResponseBody::Trace`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanWire {
    /// Id within the trace (0 for out-of-band instants).
    pub span_id: u64,
    /// Enclosing span's id (0 = root).
    pub parent_id: u64,
    pub name: String,
    /// Microseconds since the server's trace epoch.
    pub start_us: u64,
    /// Microseconds (0 for instants).
    pub dur_us: u64,
    /// True for point-in-time annotations.
    pub instant: bool,
    /// Structured annotations (`("class", "interactive")`, ...).
    pub args: Vec<(String, String)>,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    pub body: ResponseBody,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Announces the result tables; row chunks reference them by index.
    Header { tables: Vec<TableHeader> },
    /// Up to [`CHUNK_ROWS`] rows of one table.
    RowChunk { table: u8, rows: Vec<Vec<Value>> },
    /// The window decayed past full resolution: a highlights digest.
    Summary {
        resolution: String,
        cdr_records: u64,
        nms_records: u64,
        cells: u32,
    },
    /// Epoch-level accounting when the answer is partial.
    Coverage {
        requested: u32,
        served: u32,
        decayed: u32,
        unavailable: u32,
    },
    /// Terminal frame of a successful answer.
    Done { rows: u64 },
    /// Admission control rejected the request; retry later.
    Shed { queue_depth: u32 },
    /// Terminal failure frame.
    Error { code: u8, message: String },
    /// Nothing retained covers the window.
    Unavailable,
    /// Live introspection snapshot (answers [`RequestBody::Stats`]).
    Stats(StatsFrame),
    /// One trace's events (answers [`RequestBody::Trace`]); empty when
    /// the trace id is unknown or already overwritten in the ring.
    Trace(TraceFrame),
    /// One request's cost profile (answers [`RequestBody::Profile`]);
    /// empty when the trace id is unknown or already evicted.
    Profile(ProfileFrame),
}

/// Payload of a [`ResponseBody::Stats`] introspection answer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsFrame {
    /// Requests served over the server's lifetime.
    pub queries: u64,
    pub rows_streamed: u64,
    pub shed_overflow: u64,
    pub shed_deadline: u64,
    pub protocol_errors: u64,
    /// Current admission queue depths per class.
    pub queue_interactive: u32,
    pub queue_scan: u32,
    /// Epoch-cache counters.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_invalidations: u64,
    /// Meta-highlights monitor counters.
    pub meta_ticks: u64,
    pub anomalies_total: u64,
    /// Deterministic-stream anomalies only — the CI gate value.
    pub anomalies_deterministic: u64,
    /// Most recent anomaly records (bounded by the monitor history).
    pub anomalies: Vec<AnomalyWire>,
    /// Registry counter snapshot (name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// Payload of a [`ResponseBody::Trace`] introspection answer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceFrame {
    /// The resolved trace id (the latest one when 0 was asked for).
    pub trace_id: u64,
    pub spans: Vec<SpanWire>,
}

/// Payload of a [`ResponseBody::Profile`] introspection answer: one
/// request's cost profile as ordered `(metric, value)` pairs — the same
/// rows `EXPLAIN ANALYZE` prints, so clients render it identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileFrame {
    /// The resolved trace id (the latest profiled one when 0 was asked
    /// for). Zero with empty metrics means "nothing profiled yet".
    pub trace_id: u64,
    pub metrics: Vec<(String, String)>,
}

impl ResponseBody {
    /// Is this the last frame of an answer?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ResponseBody::Done { .. }
                | ResponseBody::Shed { .. }
                | ResponseBody::Error { .. }
                | ResponseBody::Unavailable
                | ResponseBody::Stats(_)
                | ResponseBody::Trace(_)
                | ResponseBody::Profile(_)
        )
    }
}

/// Error codes carried by [`ResponseBody::Error`].
pub mod errcode {
    pub const BAD_REQUEST: u8 = 1;
    pub const SQL: u8 = 2;
    pub const INTERNAL: u8 = 3;
    pub const SHUTTING_DOWN: u8 = 4;
}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Str(s) => {
                self.u8(1);
                self.str(s);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
        }
    }
}

/// Assemble a full frame from a kind byte and payload.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload over bound");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

impl Request {
    /// Encode as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.id);
        let kind = match &self.body {
            RequestBody::Explore {
                attributes,
                bbox,
                window,
                deadline_ms,
            } => {
                w.u16(attributes.len() as u16);
                for a in attributes {
                    w.str(a);
                }
                w.f64(bbox.0);
                w.f64(bbox.1);
                w.f64(bbox.2);
                w.f64(bbox.3);
                w.u32(window.0);
                w.u32(window.1);
                w.u64(*deadline_ms);
                kind::EXPLORE
            }
            RequestBody::Sql {
                window,
                sql,
                deadline_ms,
            } => {
                w.u32(window.0);
                w.u32(window.1);
                w.str(sql);
                w.u64(*deadline_ms);
                kind::SQL
            }
            RequestBody::Stats => kind::STATS,
            RequestBody::Trace { trace_id } => {
                w.u64(*trace_id);
                kind::TRACE
            }
            RequestBody::Profile { trace_id } => {
                w.u64(*trace_id);
                kind::PROFILE
            }
            RequestBody::Cancel { target } => {
                w.u64(*target);
                kind::CANCEL
            }
        };
        frame(kind, &w.buf)
    }

    /// Decode a payload of the given kind.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let body = match kind_byte {
            kind::EXPLORE => {
                let n = r.u16()? as usize;
                let mut attributes = Vec::new();
                for _ in 0..n {
                    attributes.push(r.str()?);
                }
                let bbox = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
                let window = (r.u32()?, r.u32()?);
                let deadline_ms = r.u64()?;
                RequestBody::Explore {
                    attributes,
                    bbox,
                    window,
                    deadline_ms,
                }
            }
            kind::SQL => {
                let window = (r.u32()?, r.u32()?);
                let sql = r.str()?;
                let deadline_ms = r.u64()?;
                RequestBody::Sql {
                    window,
                    sql,
                    deadline_ms,
                }
            }
            kind::STATS => RequestBody::Stats,
            kind::TRACE => RequestBody::Trace { trace_id: r.u64()? },
            kind::PROFILE => RequestBody::Profile { trace_id: r.u64()? },
            kind::CANCEL => RequestBody::Cancel { target: r.u64()? },
            other => return Err(ProtoError::BadKind(other)),
        };
        r.finish()?;
        Ok(Request { id, body })
    }
}

impl Response {
    /// Encode as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.id);
        let kind = match &self.body {
            ResponseBody::Header { tables } => {
                w.u8(tables.len() as u8);
                for t in tables {
                    w.str(&t.name);
                    w.u16(t.columns.len() as u16);
                    for c in &t.columns {
                        w.str(c);
                    }
                }
                kind::HEADER
            }
            ResponseBody::RowChunk { table, rows } => {
                w.u8(*table);
                w.u16(rows.len() as u16);
                for row in rows {
                    w.u16(row.len() as u16);
                    for v in row {
                        w.value(v);
                    }
                }
                kind::ROW_CHUNK
            }
            ResponseBody::Summary {
                resolution,
                cdr_records,
                nms_records,
                cells,
            } => {
                w.str(resolution);
                w.u64(*cdr_records);
                w.u64(*nms_records);
                w.u32(*cells);
                kind::SUMMARY
            }
            ResponseBody::Coverage {
                requested,
                served,
                decayed,
                unavailable,
            } => {
                w.u32(*requested);
                w.u32(*served);
                w.u32(*decayed);
                w.u32(*unavailable);
                kind::COVERAGE
            }
            ResponseBody::Done { rows } => {
                w.u64(*rows);
                kind::DONE
            }
            ResponseBody::Shed { queue_depth } => {
                w.u32(*queue_depth);
                kind::SHED
            }
            ResponseBody::Error { code, message } => {
                w.u8(*code);
                w.str(message);
                kind::ERROR
            }
            ResponseBody::Unavailable => kind::UNAVAILABLE,
            ResponseBody::Stats(s) => {
                w.u64(s.queries);
                w.u64(s.rows_streamed);
                w.u64(s.shed_overflow);
                w.u64(s.shed_deadline);
                w.u64(s.protocol_errors);
                w.u32(s.queue_interactive);
                w.u32(s.queue_scan);
                w.u64(s.cache_hits);
                w.u64(s.cache_misses);
                w.u64(s.cache_evictions);
                w.u64(s.cache_invalidations);
                w.u64(s.meta_ticks);
                w.u64(s.anomalies_total);
                w.u64(s.anomalies_deterministic);
                w.u16(s.anomalies.len() as u16);
                for a in &s.anomalies {
                    w.u64(a.tick);
                    w.str(&a.stream);
                    w.str(&a.category);
                    w.u32(a.share_milli);
                    w.u8(a.deterministic as u8);
                }
                w.u32(s.counters.len() as u32);
                for (name, value) in &s.counters {
                    w.str(name);
                    w.u64(*value);
                }
                kind::STATS_REPLY
            }
            ResponseBody::Trace(t) => {
                w.u64(t.trace_id);
                w.u32(t.spans.len() as u32);
                for s in &t.spans {
                    w.u64(s.span_id);
                    w.u64(s.parent_id);
                    w.str(&s.name);
                    w.u64(s.start_us);
                    w.u64(s.dur_us);
                    w.u8(s.instant as u8);
                    w.u16(s.args.len() as u16);
                    for (k, v) in &s.args {
                        w.str(k);
                        w.str(v);
                    }
                }
                kind::TRACE_REPLY
            }
            ResponseBody::Profile(p) => {
                w.u64(p.trace_id);
                w.u32(p.metrics.len() as u32);
                for (metric, value) in &p.metrics {
                    w.str(metric);
                    w.str(value);
                }
                kind::PROFILE_REPLY
            }
        };
        frame(kind, &w.buf)
    }

    /// Decode a payload of the given kind.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let body = match kind_byte {
            kind::HEADER => {
                let n = r.u8()? as usize;
                let mut tables = Vec::new();
                for _ in 0..n {
                    let name = r.str()?;
                    let ncols = r.u16()? as usize;
                    let mut columns = Vec::new();
                    for _ in 0..ncols {
                        columns.push(r.str()?);
                    }
                    tables.push(TableHeader { name, columns });
                }
                ResponseBody::Header { tables }
            }
            kind::ROW_CHUNK => {
                let table = r.u8()?;
                let nrows = r.u16()? as usize;
                let mut rows = Vec::new();
                for _ in 0..nrows {
                    let ncols = r.u16()? as usize;
                    let mut row = Vec::new();
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                ResponseBody::RowChunk { table, rows }
            }
            kind::SUMMARY => ResponseBody::Summary {
                resolution: r.str()?,
                cdr_records: r.u64()?,
                nms_records: r.u64()?,
                cells: r.u32()?,
            },
            kind::COVERAGE => ResponseBody::Coverage {
                requested: r.u32()?,
                served: r.u32()?,
                decayed: r.u32()?,
                unavailable: r.u32()?,
            },
            kind::DONE => ResponseBody::Done { rows: r.u64()? },
            kind::SHED => ResponseBody::Shed {
                queue_depth: r.u32()?,
            },
            kind::ERROR => ResponseBody::Error {
                code: r.u8()?,
                message: r.str()?,
            },
            kind::UNAVAILABLE => ResponseBody::Unavailable,
            kind::STATS_REPLY => {
                let queries = r.u64()?;
                let rows_streamed = r.u64()?;
                let shed_overflow = r.u64()?;
                let shed_deadline = r.u64()?;
                let protocol_errors = r.u64()?;
                let queue_interactive = r.u32()?;
                let queue_scan = r.u32()?;
                let cache_hits = r.u64()?;
                let cache_misses = r.u64()?;
                let cache_evictions = r.u64()?;
                let cache_invalidations = r.u64()?;
                let meta_ticks = r.u64()?;
                let anomalies_total = r.u64()?;
                let anomalies_deterministic = r.u64()?;
                let n_anoms = r.u16()? as usize;
                let mut anomalies = Vec::new();
                for _ in 0..n_anoms {
                    anomalies.push(AnomalyWire {
                        tick: r.u64()?,
                        stream: r.str()?,
                        category: r.str()?,
                        share_milli: r.u32()?,
                        deterministic: r.u8()? != 0,
                    });
                }
                let n_counters = r.u32()? as usize;
                let mut counters = Vec::new();
                for _ in 0..n_counters {
                    let name = r.str()?;
                    let value = r.u64()?;
                    counters.push((name, value));
                }
                ResponseBody::Stats(StatsFrame {
                    queries,
                    rows_streamed,
                    shed_overflow,
                    shed_deadline,
                    protocol_errors,
                    queue_interactive,
                    queue_scan,
                    cache_hits,
                    cache_misses,
                    cache_evictions,
                    cache_invalidations,
                    meta_ticks,
                    anomalies_total,
                    anomalies_deterministic,
                    anomalies,
                    counters,
                })
            }
            kind::TRACE_REPLY => {
                let trace_id = r.u64()?;
                let nspans = r.u32()? as usize;
                let mut spans = Vec::new();
                for _ in 0..nspans {
                    let span_id = r.u64()?;
                    let parent_id = r.u64()?;
                    let name = r.str()?;
                    let start_us = r.u64()?;
                    let dur_us = r.u64()?;
                    let instant = r.u8()? != 0;
                    let nargs = r.u16()? as usize;
                    let mut args = Vec::new();
                    for _ in 0..nargs {
                        let k = r.str()?;
                        let v = r.str()?;
                        args.push((k, v));
                    }
                    spans.push(SpanWire {
                        span_id,
                        parent_id,
                        name,
                        start_us,
                        dur_us,
                        instant,
                        args,
                    });
                }
                ResponseBody::Trace(TraceFrame { trace_id, spans })
            }
            kind::PROFILE_REPLY => {
                let trace_id = r.u64()?;
                let n = r.u32()? as usize;
                let mut metrics = Vec::new();
                for _ in 0..n {
                    let metric = r.str()?;
                    let value = r.str()?;
                    metrics.push((metric, value));
                }
                ResponseBody::Profile(ProfileFrame { trace_id, metrics })
            }
            other => return Err(ProtoError::BadKind(other)),
        };
        r.finish()?;
        Ok(Response { id, body })
    }
}

// ---------------------------------------------------------------- reading

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: u8,
    pub payload_len: usize,
}

impl FrameHeader {
    /// Validate the fixed 8-byte header. The length bound is enforced
    /// here, before the caller allocates a payload buffer.
    pub fn parse(bytes: &[u8; HEADER_LEN]) -> Result<Self, ProtoError> {
        if bytes[0..2] != MAGIC {
            return Err(ProtoError::BadMagic([bytes[0], bytes[1]]));
        }
        if bytes[2] != VERSION {
            return Err(ProtoError::BadVersion(bytes[2]));
        }
        let kind = bytes[3];
        if !matches!(kind, 0x01..=0x06 | 0x81..=0x8B) {
            return Err(ProtoError::BadKind(kind));
        }
        let payload_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(ProtoError::Oversized(payload_len));
        }
        Ok(Self { kind, payload_len })
    }
}

/// Parse one frame out of a byte slice (header + payload). Returns the
/// frame kind, its payload slice and the total bytes consumed.
pub fn parse_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let h = FrameHeader::parse(&header)?;
    let total = HEADER_LEN + h.payload_len;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    Ok((h.kind, &buf[HEADER_LEN..total], total))
}

/// Cursor over a payload with bounds-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        // A forged string length can't reach past the (already bounded)
        // payload, so `take` is the only guard needed — no prealloc.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Str(self.str()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Trailing(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let (k, payload, used) = parse_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(Request::decode(k, payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        let (k, payload, used) = parse_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(Response::decode(k, payload).unwrap(), resp);
    }

    #[test]
    fn request_frames_round_trip() {
        roundtrip_request(Request {
            id: 7,
            body: RequestBody::Explore {
                attributes: vec!["upflux".into(), "downflux".into()],
                bbox: (0.0, -1.5, 38_000.0, f64::MAX),
                window: (3, 9),
                deadline_ms: 0,
            },
        });
        roundtrip_request(Request {
            id: u64::MAX,
            body: RequestBody::Sql {
                window: (0, 47),
                sql: "SELECT cell_id, SUM(call_drops) FROM NMS GROUP BY cell_id".into(),
                deadline_ms: 0,
            },
        });
    }

    #[test]
    fn deadlines_ride_the_data_plane_frames() {
        let explore = RequestBody::Explore {
            attributes: vec!["upflux".into()],
            bbox: (0.0, 0.0, 1.0, 1.0),
            window: (0, 3),
            deadline_ms: 250,
        };
        assert_eq!(explore.deadline_ms(), Some(250));
        assert!(!explore.is_control());
        roundtrip_request(Request {
            id: 20,
            body: explore,
        });
        let sql = RequestBody::Sql {
            window: (1, 2),
            sql: "SELECT 1".into(),
            deadline_ms: u64::MAX,
        };
        assert_eq!(sql.deadline_ms(), Some(u64::MAX));
        roundtrip_request(Request { id: 21, body: sql });
        assert_eq!(RequestBody::Stats.deadline_ms(), None);
    }

    #[test]
    fn cancel_frames_round_trip_and_are_control_plane() {
        let cancel = RequestBody::Cancel { target: 42 };
        assert!(cancel.is_control());
        assert_eq!(cancel.window(), None);
        assert_eq!(cancel.window_len(), 0);
        assert_eq!(cancel.deadline_ms(), None);
        roundtrip_request(Request {
            id: 30,
            body: cancel,
        });
        // The 0x06 kind byte passes header validation.
        let bytes = Request {
            id: 30,
            body: RequestBody::Cancel { target: 42 },
        }
        .encode();
        assert_eq!(bytes[3], kind::CANCEL);
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        assert!(FrameHeader::parse(&header).is_ok());
        // 0x07 is still rejected: the widened range stops at Cancel.
        let mut bad = bytes;
        bad[3] = 0x07;
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadKind(0x07))));
    }

    #[test]
    fn introspection_request_frames_round_trip() {
        roundtrip_request(Request {
            id: 9,
            body: RequestBody::Stats,
        });
        roundtrip_request(Request {
            id: 10,
            body: RequestBody::Trace {
                trace_id: (3 << 32) | 7,
            },
        });
        roundtrip_request(Request {
            id: 11,
            body: RequestBody::Trace { trace_id: 0 },
        });
        roundtrip_request(Request {
            id: 12,
            body: RequestBody::Profile {
                trace_id: (5 << 32) | 2,
            },
        });
        roundtrip_request(Request {
            id: 13,
            body: RequestBody::Profile { trace_id: 0 },
        });
        assert!(RequestBody::Profile { trace_id: 0 }.is_control());
        assert_eq!(RequestBody::Profile { trace_id: 0 }.window(), None);
        assert!(RequestBody::Stats.is_control());
        assert_eq!(RequestBody::Stats.window(), None);
        assert_eq!(RequestBody::Stats.window_len(), 0);
    }

    #[test]
    fn stats_reply_round_trips() {
        roundtrip_response(Response {
            id: 9,
            body: ResponseBody::Stats(StatsFrame {
                queries: 120,
                rows_streamed: 9_000,
                shed_overflow: 3,
                shed_deadline: 1,
                protocol_errors: 0,
                queue_interactive: 5,
                queue_scan: 2,
                cache_hits: 80,
                cache_misses: 40,
                cache_evictions: 12,
                cache_invalidations: 4,
                meta_ticks: 16,
                anomalies_total: 2,
                anomalies_deterministic: 1,
                anomalies: vec![
                    AnomalyWire {
                        tick: 12,
                        stream: "dfs.retry".into(),
                        category: "burst".into(),
                        share_milli: 62,
                        deterministic: true,
                    },
                    AnomalyWire {
                        tick: 14,
                        stream: "serve.shed".into(),
                        category: "storm".into(),
                        share_milli: 125,
                        deterministic: false,
                    },
                ],
                counters: vec![
                    ("serve.queries".into(), 120),
                    ("dfs.read.bytes".into(), 1 << 40),
                ],
            }),
        });
        // Empty snapshot (fresh server) is valid too.
        roundtrip_response(Response {
            id: 1,
            body: ResponseBody::Stats(StatsFrame::default()),
        });
    }

    #[test]
    fn trace_reply_round_trips() {
        roundtrip_response(Response {
            id: 10,
            body: ResponseBody::Trace(TraceFrame {
                trace_id: (1 << 32) | 3,
                spans: vec![
                    SpanWire {
                        span_id: 0,
                        parent_id: 0,
                        name: "admission.enqueue".into(),
                        start_us: 10,
                        dur_us: 0,
                        instant: true,
                        args: vec![("class".into(), "interactive".into())],
                    },
                    SpanWire {
                        span_id: 1,
                        parent_id: 0,
                        name: "admission.wait".into(),
                        start_us: 10,
                        dur_us: 420,
                        instant: false,
                        args: vec![],
                    },
                    SpanWire {
                        span_id: 2,
                        parent_id: 0,
                        name: "serve.request".into(),
                        start_us: 430,
                        dur_us: 1_800,
                        instant: false,
                        args: vec![],
                    },
                ],
            }),
        });
        // Unknown trace id answers with an empty frame.
        roundtrip_response(Response {
            id: 11,
            body: ResponseBody::Trace(TraceFrame {
                trace_id: 0,
                spans: vec![],
            }),
        });
    }

    #[test]
    fn profile_reply_round_trips() {
        let frame = ProfileFrame {
            trace_id: (2 << 32) | 9,
            metrics: vec![
                ("epochs_touched".into(), "3".into()),
                ("bytes_read.dfs".into(), "18874".into()),
                ("bytes_read.total".into(), "18874".into()),
                ("rows_scanned".into(), "4200".into()),
                ("time.total_us".into(), "512".into()),
            ],
        };
        let body = ResponseBody::Profile(frame);
        assert!(body.is_terminal());
        roundtrip_response(Response { id: 12, body });
        // Unknown / evicted trace id answers with an empty frame.
        roundtrip_response(Response {
            id: 13,
            body: ResponseBody::Profile(ProfileFrame::default()),
        });
    }

    #[test]
    fn response_frames_round_trip() {
        roundtrip_response(Response {
            id: 1,
            body: ResponseBody::Header {
                tables: vec![TableHeader {
                    name: "CDR".into(),
                    columns: vec!["upflux".into(), "downflux".into()],
                }],
            },
        });
        roundtrip_response(Response {
            id: 2,
            body: ResponseBody::RowChunk {
                table: 0,
                rows: vec![
                    vec![Value::Int(-4), Value::Null],
                    vec![Value::Str("DROP".into()), Value::Float(2.5)],
                ],
            },
        });
        roundtrip_response(Response {
            id: 3,
            body: ResponseBody::Coverage {
                requested: 10,
                served: 7,
                decayed: 2,
                unavailable: 1,
            },
        });
        roundtrip_response(Response {
            id: 4,
            body: ResponseBody::Done { rows: 12345 },
        });
        roundtrip_response(Response {
            id: 5,
            body: ResponseBody::Unavailable,
        });
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Request {
            id: 0,
            body: RequestBody::Sql {
                window: (0, 0),
                sql: "SELECT 1".into(),
                deadline_ms: 0,
            },
        }
        .encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            parse_frame(&bytes),
            Err(ProtoError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn truncated_and_trailing_frames_error_cleanly() {
        let bytes = Response {
            id: 9,
            body: ResponseBody::Done { rows: 1 },
        }
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(parse_frame(&bytes[..cut]), Err(ProtoError::Truncated));
        }
        // Payload longer than the body decodes to Trailing.
        let (k, payload, _) = parse_frame(&bytes).unwrap();
        let mut padded = payload.to_vec();
        padded.push(0xFF);
        assert_eq!(Response::decode(k, &padded), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn bad_magic_version_kind_are_rejected() {
        let good = Request {
            id: 0,
            body: RequestBody::Sql {
                window: (0, 0),
                sql: String::new(),
                deadline_ms: 0,
            },
        }
        .encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadMagic(_))));
        let mut bad = good.clone();
        bad[2] = 0x7F;
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadVersion(_))));
        let mut bad = good;
        bad[3] = 0x40;
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadKind(0x40))));
    }
}
