//! The length-prefixed binary frame protocol of the serving layer.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +------+------+---------+----------+--- ... ---+
//! | 0x53 | 0x56 | version |   kind   |  len: u32 |  payload (len bytes)
//! | 'S'  | 'V'  |  0x01   |  u8      |  LE       |
//! +------+------+---------+----------+-----------+
//! ```
//!
//! Requests are a data exploration query `Q(a, b, w)` or a SPATE-SQL
//! string scoped to a window; responses stream back in bounded chunks
//! (header, row chunks of at most [`CHUNK_ROWS`] rows, then a terminal
//! frame), so one multi-million-row scan never materializes as a single
//! frame and slow consumers exert backpressure through the transport.
//! Every payload leads with the request id it answers, so a client can
//! pipeline requests over one connection.
//!
//! Decoding is adversarial-input-hardened in the same spirit as the
//! codec containers: a forged length field beyond [`MAX_PAYLOAD`] is
//! rejected *before* any allocation, truncated frames report
//! [`ProtoError::Truncated`] rather than panicking, and trailing bytes
//! after a well-formed payload are an error (no smuggling).

use std::fmt;
use telco_trace::record::Value;

/// Protocol magic: "SV" (SPATE serVe).
pub const MAGIC: [u8; 2] = [0x53, 0x56];
/// Protocol version byte.
pub const VERSION: u8 = 0x01;
/// Frame header length: magic (2) + version (1) + kind (1) + len (4).
pub const HEADER_LEN: usize = 8;
/// Hard payload bound, enforced before allocating.
pub const MAX_PAYLOAD: usize = 4 << 20;
/// Rows per streamed response chunk.
pub const CHUNK_ROWS: usize = 256;

/// Frame kind bytes. Requests use the low range, responses the high.
pub mod kind {
    pub const EXPLORE: u8 = 0x01;
    pub const SQL: u8 = 0x02;

    pub const HEADER: u8 = 0x81;
    pub const ROW_CHUNK: u8 = 0x82;
    pub const SUMMARY: u8 = 0x83;
    pub const COVERAGE: u8 = 0x84;
    pub const DONE: u8 = 0x85;
    pub const ERROR: u8 = 0x86;
    pub const SHED: u8 = 0x87;
    pub const UNAVAILABLE: u8 = 0x88;
}

/// Errors decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the header/payload claims (incomplete read).
    Truncated,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    BadMagic([u8; 2]),
    BadVersion(u8),
    BadKind(u8),
    BadUtf8,
    /// Unknown value/field tag inside a payload.
    BadTag(u8),
    /// Well-formed payload followed by junk bytes.
    Trailing(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on every response frame.
    pub id: u64,
    pub body: RequestBody,
}

#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// `Q(a, b, w)`: attribute selection, bounding box, epoch window.
    Explore {
        attributes: Vec<String>,
        /// `(min_x, min_y, max_x, max_y)` in meters.
        bbox: (f64, f64, f64, f64),
        /// Inclusive epoch window.
        window: (u32, u32),
    },
    /// A SPATE-SQL statement scoped to an epoch window.
    Sql { window: (u32, u32), sql: String },
}

impl RequestBody {
    /// The requested epoch window (both request forms carry one).
    pub fn window(&self) -> (u32, u32) {
        match self {
            RequestBody::Explore { window, .. } | RequestBody::Sql { window, .. } => *window,
        }
    }

    /// Window length in epochs.
    pub fn window_len(&self) -> u32 {
        let (a, b) = self.window();
        b.saturating_sub(a) + 1
    }
}

/// One table announced by a [`ResponseBody::Header`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHeader {
    pub name: String,
    pub columns: Vec<String>,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    pub body: ResponseBody,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Announces the result tables; row chunks reference them by index.
    Header { tables: Vec<TableHeader> },
    /// Up to [`CHUNK_ROWS`] rows of one table.
    RowChunk { table: u8, rows: Vec<Vec<Value>> },
    /// The window decayed past full resolution: a highlights digest.
    Summary {
        resolution: String,
        cdr_records: u64,
        nms_records: u64,
        cells: u32,
    },
    /// Epoch-level accounting when the answer is partial.
    Coverage {
        requested: u32,
        served: u32,
        decayed: u32,
        unavailable: u32,
    },
    /// Terminal frame of a successful answer.
    Done { rows: u64 },
    /// Admission control rejected the request; retry later.
    Shed { queue_depth: u32 },
    /// Terminal failure frame.
    Error { code: u8, message: String },
    /// Nothing retained covers the window.
    Unavailable,
}

impl ResponseBody {
    /// Is this the last frame of an answer?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ResponseBody::Done { .. }
                | ResponseBody::Shed { .. }
                | ResponseBody::Error { .. }
                | ResponseBody::Unavailable
        )
    }
}

/// Error codes carried by [`ResponseBody::Error`].
pub mod errcode {
    pub const BAD_REQUEST: u8 = 1;
    pub const SQL: u8 = 2;
    pub const INTERNAL: u8 = 3;
    pub const SHUTTING_DOWN: u8 = 4;
}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Str(s) => {
                self.u8(1);
                self.str(s);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
        }
    }
}

/// Assemble a full frame from a kind byte and payload.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload over bound");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

impl Request {
    /// Encode as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.id);
        let kind = match &self.body {
            RequestBody::Explore {
                attributes,
                bbox,
                window,
            } => {
                w.u16(attributes.len() as u16);
                for a in attributes {
                    w.str(a);
                }
                w.f64(bbox.0);
                w.f64(bbox.1);
                w.f64(bbox.2);
                w.f64(bbox.3);
                w.u32(window.0);
                w.u32(window.1);
                kind::EXPLORE
            }
            RequestBody::Sql { window, sql } => {
                w.u32(window.0);
                w.u32(window.1);
                w.str(sql);
                kind::SQL
            }
        };
        frame(kind, &w.buf)
    }

    /// Decode a payload of the given kind.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let body = match kind_byte {
            kind::EXPLORE => {
                let n = r.u16()? as usize;
                let mut attributes = Vec::new();
                for _ in 0..n {
                    attributes.push(r.str()?);
                }
                let bbox = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
                let window = (r.u32()?, r.u32()?);
                RequestBody::Explore {
                    attributes,
                    bbox,
                    window,
                }
            }
            kind::SQL => {
                let window = (r.u32()?, r.u32()?);
                let sql = r.str()?;
                RequestBody::Sql { window, sql }
            }
            other => return Err(ProtoError::BadKind(other)),
        };
        r.finish()?;
        Ok(Request { id, body })
    }
}

impl Response {
    /// Encode as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.id);
        let kind = match &self.body {
            ResponseBody::Header { tables } => {
                w.u8(tables.len() as u8);
                for t in tables {
                    w.str(&t.name);
                    w.u16(t.columns.len() as u16);
                    for c in &t.columns {
                        w.str(c);
                    }
                }
                kind::HEADER
            }
            ResponseBody::RowChunk { table, rows } => {
                w.u8(*table);
                w.u16(rows.len() as u16);
                for row in rows {
                    w.u16(row.len() as u16);
                    for v in row {
                        w.value(v);
                    }
                }
                kind::ROW_CHUNK
            }
            ResponseBody::Summary {
                resolution,
                cdr_records,
                nms_records,
                cells,
            } => {
                w.str(resolution);
                w.u64(*cdr_records);
                w.u64(*nms_records);
                w.u32(*cells);
                kind::SUMMARY
            }
            ResponseBody::Coverage {
                requested,
                served,
                decayed,
                unavailable,
            } => {
                w.u32(*requested);
                w.u32(*served);
                w.u32(*decayed);
                w.u32(*unavailable);
                kind::COVERAGE
            }
            ResponseBody::Done { rows } => {
                w.u64(*rows);
                kind::DONE
            }
            ResponseBody::Shed { queue_depth } => {
                w.u32(*queue_depth);
                kind::SHED
            }
            ResponseBody::Error { code, message } => {
                w.u8(*code);
                w.str(message);
                kind::ERROR
            }
            ResponseBody::Unavailable => kind::UNAVAILABLE,
        };
        frame(kind, &w.buf)
    }

    /// Decode a payload of the given kind.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let body = match kind_byte {
            kind::HEADER => {
                let n = r.u8()? as usize;
                let mut tables = Vec::new();
                for _ in 0..n {
                    let name = r.str()?;
                    let ncols = r.u16()? as usize;
                    let mut columns = Vec::new();
                    for _ in 0..ncols {
                        columns.push(r.str()?);
                    }
                    tables.push(TableHeader { name, columns });
                }
                ResponseBody::Header { tables }
            }
            kind::ROW_CHUNK => {
                let table = r.u8()?;
                let nrows = r.u16()? as usize;
                let mut rows = Vec::new();
                for _ in 0..nrows {
                    let ncols = r.u16()? as usize;
                    let mut row = Vec::new();
                    for _ in 0..ncols {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                ResponseBody::RowChunk { table, rows }
            }
            kind::SUMMARY => ResponseBody::Summary {
                resolution: r.str()?,
                cdr_records: r.u64()?,
                nms_records: r.u64()?,
                cells: r.u32()?,
            },
            kind::COVERAGE => ResponseBody::Coverage {
                requested: r.u32()?,
                served: r.u32()?,
                decayed: r.u32()?,
                unavailable: r.u32()?,
            },
            kind::DONE => ResponseBody::Done { rows: r.u64()? },
            kind::SHED => ResponseBody::Shed {
                queue_depth: r.u32()?,
            },
            kind::ERROR => ResponseBody::Error {
                code: r.u8()?,
                message: r.str()?,
            },
            kind::UNAVAILABLE => ResponseBody::Unavailable,
            other => return Err(ProtoError::BadKind(other)),
        };
        r.finish()?;
        Ok(Response { id, body })
    }
}

// ---------------------------------------------------------------- reading

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: u8,
    pub payload_len: usize,
}

impl FrameHeader {
    /// Validate the fixed 8-byte header. The length bound is enforced
    /// here, before the caller allocates a payload buffer.
    pub fn parse(bytes: &[u8; HEADER_LEN]) -> Result<Self, ProtoError> {
        if bytes[0..2] != MAGIC {
            return Err(ProtoError::BadMagic([bytes[0], bytes[1]]));
        }
        if bytes[2] != VERSION {
            return Err(ProtoError::BadVersion(bytes[2]));
        }
        let kind = bytes[3];
        if !matches!(kind, 0x01..=0x02 | 0x81..=0x88) {
            return Err(ProtoError::BadKind(kind));
        }
        let payload_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(ProtoError::Oversized(payload_len));
        }
        Ok(Self { kind, payload_len })
    }
}

/// Parse one frame out of a byte slice (header + payload). Returns the
/// frame kind, its payload slice and the total bytes consumed.
pub fn parse_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let h = FrameHeader::parse(&header)?;
    let total = HEADER_LEN + h.payload_len;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    Ok((h.kind, &buf[HEADER_LEN..total], total))
}

/// Cursor over a payload with bounds-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        // A forged string length can't reach past the (already bounded)
        // payload, so `take` is the only guard needed — no prealloc.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Str(self.str()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Trailing(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let (k, payload, used) = parse_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(Request::decode(k, payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        let (k, payload, used) = parse_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(Response::decode(k, payload).unwrap(), resp);
    }

    #[test]
    fn request_frames_round_trip() {
        roundtrip_request(Request {
            id: 7,
            body: RequestBody::Explore {
                attributes: vec!["upflux".into(), "downflux".into()],
                bbox: (0.0, -1.5, 38_000.0, f64::MAX),
                window: (3, 9),
            },
        });
        roundtrip_request(Request {
            id: u64::MAX,
            body: RequestBody::Sql {
                window: (0, 47),
                sql: "SELECT cell_id, SUM(call_drops) FROM NMS GROUP BY cell_id".into(),
            },
        });
    }

    #[test]
    fn response_frames_round_trip() {
        roundtrip_response(Response {
            id: 1,
            body: ResponseBody::Header {
                tables: vec![TableHeader {
                    name: "CDR".into(),
                    columns: vec!["upflux".into(), "downflux".into()],
                }],
            },
        });
        roundtrip_response(Response {
            id: 2,
            body: ResponseBody::RowChunk {
                table: 0,
                rows: vec![
                    vec![Value::Int(-4), Value::Null],
                    vec![Value::Str("DROP".into()), Value::Float(2.5)],
                ],
            },
        });
        roundtrip_response(Response {
            id: 3,
            body: ResponseBody::Coverage {
                requested: 10,
                served: 7,
                decayed: 2,
                unavailable: 1,
            },
        });
        roundtrip_response(Response {
            id: 4,
            body: ResponseBody::Done { rows: 12345 },
        });
        roundtrip_response(Response {
            id: 5,
            body: ResponseBody::Unavailable,
        });
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Request {
            id: 0,
            body: RequestBody::Sql {
                window: (0, 0),
                sql: "SELECT 1".into(),
            },
        }
        .encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            parse_frame(&bytes),
            Err(ProtoError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn truncated_and_trailing_frames_error_cleanly() {
        let bytes = Response {
            id: 9,
            body: ResponseBody::Done { rows: 1 },
        }
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(parse_frame(&bytes[..cut]), Err(ProtoError::Truncated));
        }
        // Payload longer than the body decodes to Trailing.
        let (k, payload, _) = parse_frame(&bytes).unwrap();
        let mut padded = payload.to_vec();
        padded.push(0xFF);
        assert_eq!(Response::decode(k, &padded), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn bad_magic_version_kind_are_rejected() {
        let good = Request {
            id: 0,
            body: RequestBody::Sql {
                window: (0, 0),
                sql: String::new(),
            },
        }
        .encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadMagic(_))));
        let mut bad = good.clone();
        bad[2] = 0x7F;
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadVersion(_))));
        let mut bad = good;
        bad[3] = 0x40;
        assert!(matches!(parse_frame(&bad), Err(ProtoError::BadKind(0x40))));
    }
}
