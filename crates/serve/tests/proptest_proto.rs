//! Property tests of the frame protocol, in the same adversarial spirit
//! as `codecs/tests/proptest_fuzz_decompress.rs`: everything that
//! encodes must decode to the identical value, and nothing hostile —
//! truncated, oversized, bit-flipped, or pure garbage — may ever panic
//! or provoke an unbounded allocation.

use proptest::prelude::*;
use spate_serve::proto::{
    kind, parse_frame, ProtoError, Request, RequestBody, Response, ResponseBody, TableHeader,
    HEADER_LEN, MAX_PAYLOAD,
};
use telco_trace::record::Value;

/// Lowercase-ascii word from arbitrary bytes (the compat proptest has no
/// string strategy; protocol strings are length-prefixed bytes anyway,
/// and non-ascii utf-8 is covered by the garbage/bit-flip suites).
fn word(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect()
}

/// A `Value` from a tag byte and raw material.
fn value(tag: u8, int: i64, float_bits: u64, s: &[u8]) -> Value {
    match tag % 4 {
        0 => Value::Null,
        1 => Value::Str(word(s)),
        2 => Value::Int(int),
        // Quiet-NaN payloads don't round-trip PartialEq; keep finite.
        _ => Value::Float((float_bits % 1_000_000) as f64 / 7.0 - 3_000.0),
    }
}

fn roundtrip_request(req: &Request) {
    let bytes = req.encode();
    let (k, payload, used) = parse_frame(&bytes).expect("own encoding parses");
    assert_eq!(used, bytes.len());
    assert_eq!(
        &Request::decode(k, payload).expect("own encoding decodes"),
        req
    );
}

fn roundtrip_response(resp: &Response) {
    let bytes = resp.encode();
    let (k, payload, used) = parse_frame(&bytes).expect("own encoding parses");
    assert_eq!(used, bytes.len());
    assert_eq!(
        &Response::decode(k, payload).expect("own encoding decodes"),
        resp
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn explore_requests_round_trip(
        id in any::<u64>(),
        attrs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 0..6),
        x0 in 0.0f64..100_000.0,
        y0 in 0.0f64..100_000.0,
        dx in 0.0f64..100_000.0,
        dy in 0.0f64..100_000.0,
        w0 in 0u32..50_000,
        len in 0u32..2_000,
        deadline_ms in any::<u64>(),
    ) {
        let req = Request {
            id,
            body: RequestBody::Explore {
                attributes: attrs.iter().map(|a| word(a)).collect(),
                bbox: (x0, y0, x0 + dx, y0 + dy),
                window: (w0, w0 + len),
                deadline_ms,
            },
        };
        roundtrip_request(&req);
    }

    #[test]
    fn sql_requests_round_trip(
        id in any::<u64>(),
        sql_bytes in proptest::collection::vec(any::<u8>(), 0..400),
        w0 in 0u32..50_000,
        len in 0u32..2_000,
        deadline_ms in any::<u64>(),
    ) {
        let req = Request {
            id,
            body: RequestBody::Sql {
                window: (w0, w0 + len),
                sql: word(&sql_bytes),
                deadline_ms,
            },
        };
        roundtrip_request(&req);
    }

    #[test]
    fn row_chunk_responses_round_trip(
        id in any::<u64>(),
        table in any::<u8>(),
        cells in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<i64>(), any::<u64>(),
                 proptest::collection::vec(any::<u8>(), 0..10)),
                0..5,
            ),
            0..20,
        ),
    ) {
        let rows: Vec<Vec<Value>> = cells
            .iter()
            .map(|row| row.iter().map(|(t, i, f, s)| value(*t, *i, *f, s)).collect())
            .collect();
        roundtrip_response(&Response {
            id,
            body: ResponseBody::RowChunk { table, rows },
        });
    }

    #[test]
    fn control_responses_round_trip(
        id in any::<u64>(),
        pick in 0u8..6,
        a in any::<u32>(),
        b in any::<u32>(),
        c in any::<u32>(),
        d in any::<u32>(),
        n in any::<u64>(),
        code in any::<u8>(),
        text in proptest::collection::vec(any::<u8>(), 0..60),
        cols in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..6),
    ) {
        let body = match pick {
            0 => ResponseBody::Header {
                tables: vec![TableHeader {
                    name: word(&text),
                    columns: cols.iter().map(|w| word(w)).collect(),
                }],
            },
            1 => ResponseBody::Summary {
                resolution: word(&text),
                cdr_records: n,
                nms_records: n ^ 0xFF,
                cells: a,
            },
            2 => ResponseBody::Coverage {
                requested: a,
                served: b,
                decayed: c,
                unavailable: d,
            },
            3 => ResponseBody::Done { rows: n },
            4 => ResponseBody::Shed { queue_depth: a },
            _ => ResponseBody::Error { code, message: word(&text) },
        };
        roundtrip_response(&Response { id, body });
    }

    #[test]
    fn every_truncation_errors_cleanly(
        id in any::<u64>(),
        sql_bytes in proptest::collection::vec(any::<u8>(), 0..80),
        w0 in 0u32..1_000,
    ) {
        let bytes = Request {
            id,
            body: RequestBody::Sql { window: (w0, w0), sql: word(&sql_bytes), deadline_ms: 0 },
        }
        .encode();
        for cut in 0..bytes.len() {
            prop_assert_eq!(parse_frame(&bytes[..cut]), Err(ProtoError::Truncated));
        }
    }

    #[test]
    fn forged_oversized_lengths_are_rejected_before_allocation(
        id in any::<u64>(),
        extra in 1u32..1_000_000,
    ) {
        let mut bytes = Request {
            id,
            body: RequestBody::Sql { window: (0, 0), sql: "SELECT 1".into(), deadline_ms: 0 },
        }
        .encode();
        let forged = (MAX_PAYLOAD as u32).saturating_add(extra);
        bytes[4..8].copy_from_slice(&forged.to_le_bytes());
        prop_assert_eq!(
            parse_frame(&bytes),
            Err(ProtoError::Oversized(forged as usize))
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Any outcome is fine except a panic or a runaway allocation.
        if let Ok((k, payload, used)) = parse_frame(&data) {
            prop_assert!(used <= data.len());
            let _ = Request::decode(k, payload);
            let _ = Response::decode(k, payload);
        }
    }

    #[test]
    fn introspection_requests_round_trip(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        pick in 0u8..3,
    ) {
        let body = match pick {
            0 => RequestBody::Stats,
            1 => RequestBody::Trace { trace_id },
            _ => RequestBody::Cancel { target: trace_id },
        };
        roundtrip_request(&Request { id, body });
    }

    #[test]
    fn introspection_replies_round_trip(
        id in any::<u64>(),
        counts in proptest::collection::vec(any::<u64>(), 14),
        anoms in proptest::collection::vec(
            ((any::<u64>(), proptest::collection::vec(any::<u8>(), 0..12)),
             (proptest::collection::vec(any::<u8>(), 0..12), any::<u32>(), any::<bool>())),
            0..6,
        ),
        counters in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()),
            0..10,
        ),
        spans in proptest::collection::vec(
            ((any::<u64>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..16)),
             (any::<u64>(), any::<u64>(), any::<bool>(),
              proptest::collection::vec(
                  (proptest::collection::vec(any::<u8>(), 0..8),
                   proptest::collection::vec(any::<u8>(), 0..8)),
                  0..3,
              ))),
            0..8,
        ),
        trace_id in any::<u64>(),
        pick_stats in any::<bool>(),
    ) {
        let body = if pick_stats {
            ResponseBody::Stats(spate_serve::proto::StatsFrame {
                queries: counts[0],
                rows_streamed: counts[1],
                shed_overflow: counts[2],
                shed_deadline: counts[3],
                protocol_errors: counts[4],
                queue_interactive: counts[5] as u32,
                queue_scan: counts[6] as u32,
                cache_hits: counts[7],
                cache_misses: counts[8],
                cache_evictions: counts[9],
                cache_invalidations: counts[10],
                meta_ticks: counts[11],
                anomalies_total: counts[12],
                anomalies_deterministic: counts[13],
                anomalies: anoms.iter().map(|((t, s), (c, m, d))| {
                    spate_serve::proto::AnomalyWire {
                        tick: *t,
                        stream: word(s),
                        category: word(c),
                        share_milli: *m,
                        deterministic: *d,
                    }
                }).collect(),
                counters: counters.iter().map(|(n, v)| (word(n), *v)).collect(),
            })
        } else {
            ResponseBody::Trace(spate_serve::proto::TraceFrame {
                trace_id,
                spans: spans.iter().map(|((sid, pid, n), (st, du, i, args))| {
                    spate_serve::proto::SpanWire {
                        span_id: *sid,
                        parent_id: *pid,
                        name: word(n),
                        start_us: *st,
                        dur_us: *du,
                        instant: *i,
                        args: args.iter().map(|(k, v)| (word(k), word(v))).collect(),
                    }
                }).collect(),
            })
        };
        roundtrip_response(&Response { id, body });
    }

    #[test]
    fn garbage_payloads_behind_valid_headers_never_panic(
        kind_pick in 0usize..15,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let kinds = [
            kind::EXPLORE, kind::SQL, kind::HEADER, kind::ROW_CHUNK, kind::SUMMARY,
            kind::COVERAGE, kind::DONE, kind::ERROR, kind::SHED, kind::UNAVAILABLE,
            kind::STATS, kind::TRACE, kind::STATS_REPLY, kind::TRACE_REPLY, kind::CANCEL,
        ];
        let k = kinds[kind_pick];
        // Both decoders must handle any payload under any valid kind
        // byte: counts that claim more elements than there are bytes,
        // invalid utf-8, unknown value tags, trailing junk.
        let _ = Request::decode(k, &payload);
        let _ = Response::decode(k, &payload);
    }

    #[test]
    fn single_byte_flips_never_panic(
        id in any::<u64>(),
        sql_bytes in proptest::collection::vec(any::<u8>(), 1..60),
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = Request {
            id,
            body: RequestBody::Sql { window: (3, 9), sql: word(&sql_bytes), deadline_ms: 0 },
        }
        .encode();
        let at = (flip_at as usize) % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        if let Ok((k, payload, _)) = parse_frame(&bytes) {
            let _ = Request::decode(k, payload);
        }
    }
}

/// Non-random edge pins that the generators above may or may not hit.
#[test]
fn exact_header_sized_input_is_still_truncated_without_payload() {
    let req = Request {
        id: 1,
        body: RequestBody::Sql {
            window: (0, 0),
            sql: "x".into(),
            deadline_ms: 0,
        },
    };
    let bytes = req.encode();
    assert!(bytes.len() > HEADER_LEN);
    assert_eq!(
        parse_frame(&bytes[..HEADER_LEN]),
        Err(ProtoError::Truncated)
    );
}

#[test]
fn kind_bytes_cross_checked_between_request_and_response_decoders() {
    let resp = Response {
        id: 5,
        body: ResponseBody::Done { rows: 9 },
    };
    let bytes = resp.encode();
    let (k, payload, _) = parse_frame(&bytes).unwrap();
    // A response kind fed to the request decoder is a clean BadKind.
    assert_eq!(Request::decode(k, payload), Err(ProtoError::BadKind(k)));
}
