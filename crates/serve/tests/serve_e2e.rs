//! End-to-end serving tests: many concurrent seeded clients over one
//! warehouse, with ingest and decay striking mid-run.
//!
//! The load-bearing assertions mirror the CI smoke gate:
//!
//! * zero protocol errors under concurrency,
//! * zero stale reads after a mid-run decay (queries over the evicted
//!   day must answer with summaries, never with cached rows),
//! * per-client row totals are byte-identical across two runs with the
//!   same seed (the whole pipeline — classification, admission,
//!   caching, evaluation — is deterministic in its answers even though
//!   thread interleavings are not).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_core::query::Query;
use spate_core::DecayPolicy;
use spate_serve::{Reply, ServeConfig, Server};
use std::sync::{Arc, Barrier};
use telco_trace::cells::BoundingBox;
use telco_trace::time::{EpochId, EPOCHS_PER_DAY};
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

const SCALE: f64 = 1.0 / 2048.0;

fn trace(days: u32, take: usize) -> (telco_trace::cells::CellLayout, Vec<Snapshot>) {
    let mut config = TraceConfig::scaled(SCALE);
    config.days = days;
    let mut generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(take).collect();
    (layout, snaps)
}

#[test]
fn explore_and_sql_match_the_direct_framework_paths() {
    let (layout, snaps) = trace(1, 6);
    let mut fw = SpateFramework::in_memory(layout.clone());
    for s in &snaps {
        fw.ingest(s);
    }
    // Ground truth from the framework before the server takes ownership.
    let q = Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(1, 4);
    let direct_rows = fw.query(&q).row_count();
    let direct_count: usize = snaps[0..=3].iter().map(|s| s.cdr.len()).sum();

    let server = Server::start(fw, ServeConfig::default());
    let mut client = server.connect();

    match client
        .explore(&["upflux", "downflux"], BoundingBox::everything(), (1, 4))
        .unwrap()
    {
        Reply::Rows {
            tables,
            rows,
            coverage,
            total_rows,
        } => {
            assert_eq!(total_rows as usize, direct_rows);
            assert_eq!(tables[0].name, "CDR");
            assert_eq!(tables[0].columns, vec!["upflux", "downflux"]);
            assert_eq!(rows[0].len(), direct_rows, "all chunks reassembled");
            assert!(coverage.is_none(), "complete window has no coverage frame");
        }
        other => panic!("expected rows, got {other:?}"),
    }

    match client.sql((0, 3), "SELECT COUNT(*) FROM CDR").unwrap() {
        Reply::Rows { rows, .. } => {
            assert_eq!(
                rows[0][0][0],
                telco_trace::record::Value::Int(direct_count as i64)
            );
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // A malformed SQL statement is an error frame, not a dead connection.
    match client.sql((0, 3), "SELEKT nonsense").unwrap() {
        Reply::ServerError { code, .. } => assert_eq!(code, spate_serve::proto::errcode::SQL),
        other => panic!("expected error, got {other:?}"),
    }
    // The connection still serves after the error.
    assert!(matches!(
        client.sql((0, 3), "SELECT COUNT(*) FROM NMS").unwrap(),
        Reply::Rows { .. }
    ));

    client.close();
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.queries, 4);
    assert!(stats.rows_streamed >= direct_rows as u64);
}

#[test]
fn cache_is_shared_across_clients_and_invalidated_by_ingest() {
    let (layout, snaps) = trace(1, 8);
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps[..6] {
        fw.ingest(s);
    }
    let server = Server::start(fw, ServeConfig::default());

    let mut a = server.connect();
    let mut b = server.connect();
    let v0 = server.version();
    a.explore(&["upflux"], BoundingBox::everything(), (0, 3))
        .unwrap();
    let warm = server.cache_stats();
    // 4 window epochs + prefetch capped at the last ingested epoch (5).
    assert_eq!(warm.inserts, 4 + 2);
    // Client b hits what client a warmed (plus the prefetch of 4..5).
    b.explore(&["upflux"], BoundingBox::everything(), (0, 5))
        .unwrap();
    let shared = server.cache_stats();
    assert!(shared.hits >= 6, "{shared:?}");

    // Ingest bumps the version and invalidates exactly that epoch.
    server.ingest(&snaps[6]);
    assert_eq!(server.version(), v0 + 1);
    let after = server.cache_stats();
    assert_eq!(after.invalidations, 0, "epoch 6 was never cached");

    a.close();
    b.close();
    server.shutdown();
}

#[test]
fn jobs_past_their_deadline_are_shed_not_served() {
    let (layout, snaps) = trace(1, 3);
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }
    let server = Server::start(
        fw,
        ServeConfig {
            queue_deadline: std::time::Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let mut client = server.connect();
    let reply = client
        .explore(&["upflux"], BoundingBox::everything(), (0, 2))
        .unwrap();
    assert!(reply.is_shed(), "{reply:?}");
    client.close();
    let stats = server.shutdown();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.queries, 0);
}

#[test]
fn partial_coverage_propagates_through_the_wire() {
    let (layout, snaps) = trace(1, 6);
    let fs = dfs::Dfs::new(dfs::DfsConfig {
        replication: 2,
        n_datanodes: 4,
        ..dfs::DfsConfig::default()
    });
    let mut fw = SpateFramework::new(fs.clone(), layout);
    for s in &snaps {
        fw.ingest(s);
    }
    // Rot every replica of epoch 2.
    let path = fw.store().path_for(EpochId(2));
    for dn in 0..4 {
        fs.corrupt_replica_for_test(&path, dn);
    }
    fs.drop_caches();

    let server = Server::start(fw, ServeConfig::default());
    let mut client = server.connect();
    match client
        .explore(&["upflux"], BoundingBox::everything(), (0, 5))
        .unwrap()
    {
        Reply::Rows { coverage, .. } => {
            let c = coverage.expect("partial answers carry coverage");
            assert_eq!(c.requested, 6);
            assert_eq!(c.served, 5);
            assert_eq!(c.unavailable, 1);
        }
        other => panic!("expected partial rows, got {other:?}"),
    }
    client.close();
    server.shutdown();
}

/// The CI smoke scenario, as a library test: 8 seeded closed-loop
/// clients, a mid-run ingest that triggers decay of the whole day they
/// were reading, strict zero-stale-read and determinism gates.
#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    /// Phase-1 exact rows, per client.
    phase1_rows: Vec<u64>,
    /// Phase-1 SQL aggregate value, per client.
    phase1_counts: Vec<i64>,
    /// Phase-2 replies that were anything but a summary (stale reads).
    stale_reads: u64,
    protocol_errors: u64,
}

fn run_concurrent_decay_scenario(seed: u64, clients: usize) -> RunOutcome {
    let day = EPOCHS_PER_DAY;
    // Two full days ingested; day 0 decays when day 2's first snapshot
    // arrives (age 2 > full_resolution_days 1).
    let (layout, snaps) = trace(3, 2 * day as usize + 1);
    let policy = DecayPolicy {
        full_resolution_days: 1,
        day_highlight_days: 100,
        month_highlight_days: 100,
        year_highlight_days: 100,
    };
    let mut fw = SpateFramework::in_memory(layout).with_decay(policy);
    for s in &snaps[..2 * day as usize] {
        fw.ingest(s);
    }
    assert_eq!(fw.decay_log().leaves_evicted, 0, "nothing decays in setup");

    let server = Arc::new(Server::start(fw, ServeConfig::default()));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let queries_each = 8u32;

    let mut handles = Vec::new();
    for c in 0..clients {
        let server = server.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = server.connect();
            let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
            // Deterministic per-client workload: short windows inside
            // day 0. Recomputed identically in both phases.
            let windows: Vec<(u32, u32)> = (0..queries_each)
                .map(|_| {
                    let start = rng.gen_range(0..day - 6);
                    let len = rng.gen_range(1..=6);
                    (start, start + len - 1)
                })
                .collect();
            let sql_window = (0u32, day - 1);

            // Phase 1: day 0 is fully retained; every explore is exact.
            let mut phase1_rows = 0u64;
            for &w in &windows {
                loop {
                    match conn
                        .explore(&["upflux", "downflux"], BoundingBox::everything(), w)
                        .unwrap()
                    {
                        Reply::Shed { .. } => continue, // retry: keep totals deterministic
                        Reply::Rows {
                            coverage,
                            total_rows,
                            ..
                        } => {
                            assert!(coverage.is_none(), "phase 1 is fully retained");
                            phase1_rows += total_rows;
                            break;
                        }
                        other => panic!("phase 1 expected rows, got {other:?}"),
                    }
                }
            }
            let phase1_count = loop {
                match conn.sql(sql_window, "SELECT COUNT(*) FROM CDR").unwrap() {
                    Reply::Shed { .. } => continue,
                    Reply::Rows { rows, .. } => match rows[0][0][0] {
                        telco_trace::record::Value::Int(n) => break n,
                        ref v => panic!("unexpected count value {v:?}"),
                    },
                    other => panic!("phase 1 sql expected rows, got {other:?}"),
                }
            };

            barrier.wait(); // phase 1 done
            barrier.wait(); // mutation (ingest + decay) committed

            // Phase 2: day 0 decayed while we were at the barrier. Any
            // reply still carrying rows is a stale read.
            let mut stale = 0u64;
            for &w in &windows {
                loop {
                    match conn
                        .explore(&["upflux", "downflux"], BoundingBox::everything(), w)
                        .unwrap()
                    {
                        Reply::Shed { .. } => continue,
                        Reply::Summary { resolution, .. } => {
                            assert_eq!(resolution, "day");
                            break;
                        }
                        Reply::Rows { .. } => {
                            stale += 1;
                            break;
                        }
                        other => panic!("phase 2 unexpected reply {other:?}"),
                    }
                }
            }
            // SQL over the evicted day scans nothing: count must be 0,
            // anything else means the cache leaked evicted snapshots.
            loop {
                match conn.sql(sql_window, "SELECT COUNT(*) FROM CDR").unwrap() {
                    Reply::Shed { .. } => continue,
                    Reply::Rows { rows, .. } => {
                        if rows[0][0][0] != telco_trace::record::Value::Int(0) {
                            stale += 1;
                        }
                        break;
                    }
                    other => panic!("phase 2 sql unexpected reply {other:?}"),
                }
            }
            conn.close();
            (phase1_rows, phase1_count, stale)
        }));
    }

    barrier.wait(); // all clients finished phase 1
    let before = server.version();
    // Day 2 arrives: ingest runs the decay pass inside the write lock,
    // evicting day 0's 48 leaves and invalidating them from the shared
    // cache before any phase-2 read can run.
    server.ingest(&snaps[2 * day as usize]);
    assert!(server.version() > before);
    let inval = server.cache_stats().invalidations;
    assert!(inval > 0, "decay must invalidate cached day-0 epochs");
    barrier.wait(); // release phase 2

    let mut outcome = RunOutcome {
        phase1_rows: Vec::new(),
        phase1_counts: Vec::new(),
        stale_reads: 0,
        protocol_errors: 0,
    };
    for h in handles {
        let (rows, count, stale) = h.join().expect("client panicked");
        outcome.phase1_rows.push(rows);
        outcome.phase1_counts.push(count);
        outcome.stale_reads += stale;
    }
    let server = Arc::into_inner(server).expect("all clients dropped their handles");
    let stats = server.shutdown();
    outcome.protocol_errors = stats.protocol_errors;
    outcome
}

#[test]
fn concurrent_clients_see_zero_stale_reads_after_midrun_decay() {
    let outcome = run_concurrent_decay_scenario(42, 8);
    assert_eq!(outcome.stale_reads, 0, "{outcome:?}");
    assert_eq!(outcome.protocol_errors, 0, "{outcome:?}");
    assert!(outcome.phase1_rows.iter().all(|&r| r > 0), "{outcome:?}");
    // All clients agree on the full-day aggregate.
    assert!(
        outcome.phase1_counts.windows(2).all(|w| w[0] == w[1]),
        "{outcome:?}"
    );
}

#[test]
fn seeded_runs_are_answer_deterministic() {
    // Thread interleavings differ; answers must not.
    let a = run_concurrent_decay_scenario(7, 4);
    let b = run_concurrent_decay_scenario(7, 4);
    assert_eq!(a, b);
    assert_eq!(a.stale_reads, 0);
}
