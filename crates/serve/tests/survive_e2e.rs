//! Serve-tier survivability, end to end: a poison query that panics the
//! worker is isolated into an `Error` terminal frame and the server
//! keeps answering on the *same* connection and the same locks; expired
//! end-to-end deadlines degrade to honest `Partial` coverage; `Cancel`
//! frames interrupt admitted requests without wedging anything.

use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_serve::proto::errcode;
use spate_serve::{
    Reply, RequestBody, ServeConfig, Server, CHAOS_PANIC_ATTRIBUTE, CHAOS_STALL_ATTRIBUTE,
};
use telco_trace::cells::BoundingBox;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

const SCALE: f64 = 1.0 / 2048.0;

fn trace_snaps(take: usize) -> (telco_trace::cells::CellLayout, Vec<Snapshot>) {
    let mut config = TraceConfig::scaled(SCALE);
    config.days = 1;
    let mut generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(take).collect();
    (layout, snaps)
}

fn poison_server(workers: usize) -> Server {
    let (layout, snaps) = trace_snaps(6);
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }
    Server::start(
        fw,
        ServeConfig {
            workers,
            chaos_poison: true,
            ..ServeConfig::default()
        },
    )
}

/// The poison-recovery satellite: a panicking query must end in an
/// `Error` terminal frame, and the *next* request on the same connection
/// — served by the same worker pool over the same shared locks — must
/// answer normally. No stuck in-flight marks, no poisoned mutexes, no
/// dead workers.
#[test]
fn a_panicking_query_is_isolated_and_the_server_answers_the_next_request() {
    let server = poison_server(1); // one worker: it must survive, there is no spare
    let mut client = server.connect();

    let reply = client
        .explore(&[CHAOS_PANIC_ATTRIBUTE], BoundingBox::everything(), (1, 3))
        .unwrap();
    match reply {
        Reply::ServerError { code, ref message } => {
            assert_eq!(code, errcode::INTERNAL);
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected an internal error terminal frame, got {other:?}"),
    }

    // Same connection, same (sole) worker: a normal query still answers.
    let reply = client
        .explore(&["upflux"], BoundingBox::everything(), (1, 3))
        .unwrap();
    assert!(matches!(reply, Reply::Rows { .. }), "{reply:?}");

    // Introspection still works too (Stats crosses the inflight fence
    // and the monitor lock the panicking request might have poisoned).
    let stats = client.stats().unwrap();
    assert_eq!(stats.queries, 2);

    let final_stats = server.shutdown();
    assert_eq!(final_stats.panics, 1);
    assert_eq!(final_stats.queries, 2);
}

/// Every worker in the pool can eat a poison query and the pool still
/// drains a healthy workload afterwards.
#[test]
fn repeated_panics_never_shrink_the_worker_pool() {
    let server = poison_server(2);
    let mut client = server.connect();
    for _ in 0..6 {
        let reply = client
            .explore(&[CHAOS_PANIC_ATTRIBUTE], BoundingBox::everything(), (1, 2))
            .unwrap();
        assert!(matches!(reply, Reply::ServerError { .. }), "{reply:?}");
    }
    for _ in 0..4 {
        let reply = client
            .explore(&["upflux"], BoundingBox::everything(), (1, 3))
            .unwrap();
        assert!(matches!(reply, Reply::Rows { .. }), "{reply:?}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.panics, 6);
    assert_eq!(stats.queries, 10);
}

/// An expired end-to-end deadline returns `Partial` with every epoch
/// honestly reported, never a hang and never an error. The chaos stall
/// attribute holds evaluation for 5 ms, so a 1 ms deadline (measured
/// from admission) is *certainly* spent at the first per-epoch
/// checkpoint — fully deterministic, no timing luck.
#[test]
fn an_expired_deadline_degrades_to_partial_with_honest_coverage() {
    let server = poison_server(1);
    let mut client = server.connect();

    let reply = client
        .explore_with_deadline(
            &["upflux", CHAOS_STALL_ATTRIBUTE],
            BoundingBox::everything(),
            (0, 5),
            1,
        )
        .unwrap();
    match reply {
        Reply::Rows {
            coverage,
            total_rows,
            ..
        } => {
            let c = coverage.expect("an interrupted scan reports coverage");
            assert_eq!(c.requested, 6);
            assert_eq!(c.served, 0, "the scan stopped at the first checkpoint");
            assert_eq!(c.unavailable, 6);
            assert_eq!(total_rows, 0);
        }
        other => panic!("expected partial rows, got {other:?}"),
    }

    // The same query without a deadline is whole.
    let reply = client
        .explore(&["upflux"], BoundingBox::everything(), (0, 5))
        .unwrap();
    match reply {
        Reply::Rows { coverage, .. } => {
            assert!(coverage.is_none(), "full answers carry no coverage")
        }
        other => panic!("expected rows, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.deadline_expired, 1);
}

/// A `Cancel` aimed at an in-flight request interrupts it at the next
/// checkpoint (Partial, zero rows served past the interrupt) — and a
/// cancel for an unknown id is a harmless no-op. The 5 ms chaos stall
/// guarantees the cancel frame (processed on the reader thread, which
/// never blocks behind workers) lands before the first checkpoint.
#[test]
fn cancel_frames_interrupt_inflight_requests_and_ignore_unknown_targets() {
    let server = poison_server(1);
    let mut client = server.connect();

    // Unknown target: nothing to cancel, nothing breaks.
    client.cancel(999).unwrap();

    // Send without awaiting, cancel it, then read the terminal frame.
    let id = client
        .send(RequestBody::Explore {
            attributes: vec!["upflux".into(), CHAOS_STALL_ATTRIBUTE.into()],
            bbox: (f64::MIN, f64::MIN, f64::MAX, f64::MAX),
            window: (0, 5),
            deadline_ms: 0,
        })
        .unwrap();
    client.cancel(id).unwrap();
    let reply = client.await_reply(id).unwrap();
    match reply {
        Reply::Rows { coverage, .. } => {
            let c = coverage.expect("a cancelled scan reports coverage");
            assert_eq!(c.served, 0, "cancel landed before the first checkpoint");
            assert_eq!(c.unavailable, c.requested);
        }
        other => panic!("expected partial rows, got {other:?}"),
    }

    // The connection is still perfectly usable afterwards.
    let reply = client
        .explore(&["upflux"], BoundingBox::everything(), (0, 2))
        .unwrap();
    assert!(matches!(reply, Reply::Rows { .. }), "{reply:?}");
    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 1);
}
