//! End-to-end introspection tests: answering "why was request R slow"
//! over the wire, and the meta-highlights monitor flagging injected
//! fault bursts while staying silent on calm runs.
//!
//! These live in their own integration binary (own process) because the
//! meta monitor samples the *global* metric registry: the calm-phase
//! assertions below require that no concurrently running test injects
//! dfs faults or server errors, which `serve_e2e.rs` does.

use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_serve::{Reply, ServeConfig, Server};
use telco_trace::cells::BoundingBox;
use telco_trace::time::EpochId;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

const SCALE: f64 = 1.0 / 2048.0;

fn trace_snaps(take: usize) -> (telco_trace::cells::CellLayout, Vec<Snapshot>) {
    let mut config = TraceConfig::scaled(SCALE);
    config.days = 1;
    let mut generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = (&mut generator).take(take).collect();
    (layout, snaps)
}

/// One worker, one client, a cold then a warm query: the trace of the
/// cold request must tell the whole story — admission wait, the request
/// span, the evaluate span, and a cache miss per window epoch — and the
/// warm request's trace must show hits instead.
#[test]
fn trace_frame_answers_why_was_request_r_slow() {
    let (layout, snaps) = trace_snaps(6);
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }
    let server = Server::start(
        fw,
        ServeConfig {
            workers: 1,
            prefetch: false, // keep the span tree minimal and exact
            ..ServeConfig::default()
        },
    );
    let mut client = server.connect();

    // Request 1: cold cache.
    assert!(matches!(
        client
            .explore(&["upflux"], BoundingBox::everything(), (1, 3))
            .unwrap(),
        Reply::Rows { .. }
    ));
    let cold_id = client.last_trace_id().expect("a request was sent");
    assert_eq!(cold_id, spate_serve::trace_id_for(client.conn_id(), 1));

    // Request 2: same window, fully warm.
    assert!(matches!(
        client
            .explore(&["upflux"], BoundingBox::everything(), (1, 3))
            .unwrap(),
        Reply::Rows { .. }
    ));
    let warm_id = client.last_trace_id().unwrap();

    let cold = client.trace(cold_id).unwrap();
    assert_eq!(cold.trace_id, cold_id);
    let names: Vec<&str> = cold.spans.iter().map(|s| s.name.as_str()).collect();
    // Admission instant (span id 0, from the reader thread).
    assert!(names.contains(&"admission.enqueue"), "{names:?}");
    // Queue wait measured by timestamps, filed as a closed span.
    let wait = cold
        .spans
        .iter()
        .find(|s| s.name == "admission.wait")
        .expect("admission wait span");
    assert!(!wait.instant);
    assert_eq!(
        wait.args,
        vec![("class".to_string(), "interactive".to_string())]
    );
    // The worker-side spans, parented request → evaluate.
    let request = cold
        .spans
        .iter()
        .find(|s| s.name == "serve.request")
        .expect("request span");
    let evaluate = cold
        .spans
        .iter()
        .find(|s| s.name == "serve.evaluate")
        .expect("evaluate span");
    assert_eq!(evaluate.parent_id, request.span_id);
    assert!(request.dur_us >= evaluate.dur_us);
    // Cold run: one cache miss per epoch of the (1, 3) window, each
    // parented under the evaluate span.
    let misses: Vec<_> = cold
        .spans
        .iter()
        .filter(|s| s.name == "cache.miss")
        .collect();
    assert_eq!(misses.len(), 3, "{names:?}");
    assert!(misses
        .iter()
        .all(|m| m.instant && m.parent_id == evaluate.span_id));
    assert!(!cold.spans.iter().any(|s| s.name == "cache.hit"));

    // Warm run: hits, no misses.
    let warm = client.trace(warm_id).unwrap();
    let hits = warm.spans.iter().filter(|s| s.name == "cache.hit").count();
    assert_eq!(hits, 3);
    assert!(!warm.spans.iter().any(|s| s.name == "cache.miss"));

    // Span ids order the tree deterministically: sorted and unique for
    // every allocated (non-zero) id.
    let ids: Vec<u64> = cold.spans.iter().map(|s| s.span_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup_by(|a, b| *a == *b && *a != 0);
    assert_eq!(ids, sorted);

    // The same events export as structurally valid Chrome trace JSON.
    let chrome = obs::export::chrome_trace(&obs::flight().trace(cold_id));
    assert!(chrome.starts_with("{\"traceEvents\": ["));
    assert!(chrome.ends_with("]}\n") || chrome.ends_with("]}"));
    assert!(chrome.contains("\"ph\": \"X\"") && chrome.contains("\"ph\": \"i\""));
    assert!(chrome.contains("\"name\": \"serve.evaluate\""));
    assert_eq!(
        chrome.matches('{').count(),
        chrome.matches('}').count(),
        "balanced JSON objects"
    );

    // Asking for trace 0 resolves to the most recent trace.
    let latest = client.trace(0).unwrap();
    assert_ne!(latest.trace_id, 0);

    client.close();
    server.shutdown();
}

/// The Profile frame answers "what did request R cost" over the wire:
/// a cold explore pays storage reads and cache misses, the warm repeat
/// pays neither, both reconcile byte-exactly, and every served epoch
/// accrues heat in the index's ledger.
#[test]
fn profile_frame_reports_request_cost_and_heat_accrues() {
    let (layout, snaps) = trace_snaps(6);
    let fs = dfs::Dfs::new(dfs::DfsConfig::default());
    let mut fw = SpateFramework::new(fs, layout);
    for s in &snaps {
        fw.ingest(s);
    }
    // One worker so requests are served in order: by the time request
    // N+1 answers, request N's profile is guaranteed recorded.
    let server = Server::start(
        fw,
        ServeConfig {
            workers: 1,
            prefetch: false,
            ..ServeConfig::default()
        },
    );
    let mut client = server.connect();

    client
        .explore(&["upflux"], BoundingBox::everything(), (1, 3))
        .unwrap();
    let cold_id = client.last_trace_id().unwrap();
    client
        .explore(&["upflux"], BoundingBox::everything(), (1, 3))
        .unwrap();
    let warm_id = client.last_trace_id().unwrap();
    // A third request fences the warm profile into the store.
    client
        .explore(&["upflux"], BoundingBox::everything(), (5, 5))
        .unwrap();

    let get = |f: &spate_serve::ProfileFrame, k: &str| -> String {
        f.metrics
            .iter()
            .find(|(m, _)| m == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing metric {k} in {:?}", f.metrics))
    };

    // Cold: 3 epochs loaded through dfs, one miss each, zero leak.
    let cold = client.profile(cold_id).unwrap();
    assert_eq!(cold.trace_id, cold_id);
    assert_eq!(get(&cold, "epochs_touched"), "3");
    assert_eq!(get(&cold, "cache_misses"), "3");
    assert_eq!(get(&cold, "cache_hits"), "0");
    assert_eq!(get(&cold, "unattributed_bytes"), "0");
    assert!(get(&cold, "bytes_read.total").parse::<u64>().unwrap() > 0);
    assert!(get(&cold, "rows_scanned").parse::<u64>().unwrap() > 0);

    // Warm: all hits, not one byte read from storage.
    let warm = client.profile(warm_id).unwrap();
    assert_eq!(get(&warm, "epochs_touched"), "3");
    assert_eq!(get(&warm, "cache_hits"), "3");
    assert_eq!(get(&warm, "cache_misses"), "0");
    assert_eq!(get(&warm, "bytes_read.total"), "0");

    // trace_id 0 resolves to the latest profiled request; an unknown id
    // answers with an empty frame instead of an error.
    let latest = client.profile(0).unwrap();
    assert_ne!(latest.trace_id, 0);
    assert!(!latest.metrics.is_empty());
    let unknown = client.profile(u64::MAX).unwrap();
    assert!(unknown.metrics.is_empty());

    // EXPLAIN ANALYZE travels the SQL path as ordinary result rows.
    match client
        .sql((1, 3), "EXPLAIN ANALYZE SELECT caller_id FROM CDR")
        .unwrap()
    {
        Reply::Rows { tables, rows, .. } => {
            assert_eq!(tables[0].columns, vec!["metric", "value"]);
            use telco_trace::record::Value;
            let metrics: Vec<&str> = rows[0]
                .iter()
                .filter_map(|r| match &r[0] {
                    Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            assert!(metrics.contains(&"unattributed_bytes"), "{metrics:?}");
            assert!(metrics.contains(&"rows_scanned"), "{metrics:?}");
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // Heat ledger: the twice-served epochs carry both their miss and
    // their hit; the once-served epoch 5 is tracked too.
    let report = server.heat_report();
    for e in 1..=3u32 {
        let entry = report
            .epochs
            .iter()
            .find(|h| h.epoch == EpochId(e))
            .unwrap_or_else(|| panic!("epoch {e} missing from heat report"));
        assert!(entry.cache_hits >= 1, "{entry:?}");
        assert!(entry.cache_misses >= 1, "{entry:?}");
    }
    assert!(report.epochs.iter().any(|h| h.epoch == EpochId(5)));
    // The explore attribute accrued attribute heat.
    assert!(report.attributes.iter().any(|(name, ..)| name == "upflux"));

    client.close();
    server.shutdown();
}

/// The stats frame reflects server state live, including mid-run values
/// a shutdown-time report can't give you.
#[test]
fn stats_frame_snapshots_live_server_state() {
    let (layout, snaps) = trace_snaps(4);
    let mut fw = SpateFramework::in_memory(layout);
    for s in &snaps {
        fw.ingest(s);
    }
    let server = Server::start(fw, ServeConfig::default());
    let mut client = server.connect();

    let before = client.stats().unwrap();
    for _ in 0..3 {
        client
            .explore(&["upflux"], BoundingBox::everything(), (0, 3))
            .unwrap();
    }
    server.monitor_tick();
    let after = client.stats().unwrap();

    assert_eq!(after.queries - before.queries, 3);
    assert!(after.cache_hits + after.cache_misses > before.cache_hits + before.cache_misses);
    assert_eq!(after.meta_ticks - before.meta_ticks, 1);
    assert_eq!(after.protocol_errors, before.protocol_errors);
    // The registry counter snapshot rides along, name-sorted.
    assert!(after
        .counters
        .iter()
        .any(|(name, v)| name == "serve.queries" && *v > 0));
    assert!(after.counters.windows(2).all(|w| w[0].0 <= w[1].0));

    client.close();
    server.shutdown();
}

/// Meta-highlights acceptance: a fault-free run reports zero
/// deterministic anomalies over many ticks, then an injected replica
/// corruption burst fires `dfs.corruption` on the very next tick.
/// Sequential phases in one test: the calm assertion depends on no
/// parallel test disturbing the deterministic global counters.
#[test]
fn meta_highlights_flag_fault_bursts_and_stay_silent_when_calm() {
    let (layout, snaps) = trace_snaps(6);
    let fs = dfs::Dfs::new(dfs::DfsConfig {
        replication: 2,
        n_datanodes: 4,
        ..dfs::DfsConfig::default()
    });
    let mut fw = SpateFramework::new(fs.clone(), layout);
    for s in &snaps {
        fw.ingest(s);
    }
    let corrupt_path = fw.store().path_for(EpochId(2));

    // An epoch cache too small for the window, so every round re-reads
    // through dfs (served by its page cache while healthy) and the burst
    // phase can reach the rotten replica by dropping that page cache.
    let server = Server::start(
        fw,
        ServeConfig {
            cache_shards: 1,
            cache_capacity_per_shard: 2,
            ..ServeConfig::default()
        },
    );
    let mut client = server.connect();

    // Calm phase: steady traffic, a monitor tick per round. Far past the
    // arming threshold, every *deterministic* stream must stay quiet
    // (timing streams may fire advisories — other tests in this process
    // share the global registry's latency/cache series).
    for _ in 0..8 {
        for _ in 0..3 {
            assert!(matches!(
                client
                    .explore(&["upflux"], BoundingBox::everything(), (0, 4))
                    .unwrap(),
                Reply::Rows { .. }
            ));
        }
        let fired = server.monitor_tick();
        assert!(
            fired
                .iter()
                .all(|a| a.kind != spate_core::StreamKind::Deterministic),
            "calm run fired {fired:?}"
        );
    }
    let calm = client.stats().unwrap();
    assert_eq!(calm.anomalies_deterministic, 0, "{calm:?}");
    assert_eq!(calm.meta_ticks, 8);

    // Burst: rot every copy of epoch 2 and drop the dfs page cache. The
    // next explore re-fetches blocks, trips the checksums and degrades
    // to a partial answer — landing in the next tick's window.
    for dn in 0..4 {
        fs.corrupt_replica_for_test(&corrupt_path, dn);
    }
    fs.drop_caches();
    assert!(matches!(
        client
            .explore(&["upflux"], BoundingBox::everything(), (0, 4))
            .unwrap(),
        Reply::Rows { .. }
    ));
    let fired = server.monitor_tick();
    assert!(
        fired.iter().any(
            |a| a.stream == "dfs.corruption" && a.kind == spate_core::StreamKind::Deterministic
        ),
        "burst tick fired {fired:?}"
    );

    // The anomaly travels the wire with its deterministic marking.
    let stats = client.stats().unwrap();
    assert!(stats.anomalies_deterministic >= 1, "{stats:?}");
    assert!(stats
        .anomalies
        .iter()
        .any(|a| a.stream == "dfs.corruption" && a.deterministic));

    client.close();
    server.shutdown();
}
