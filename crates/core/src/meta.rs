//! Meta-highlights: SPATE's θ-rarity detection turned on the system's
//! own telemetry.
//!
//! The paper's core rule — "values with an occurrence frequency below
//! threshold θ are considered highlights" — is attribute-agnostic; it
//! only needs a value-frequency table. This module feeds *system metric
//! regimes* through the very same [`FreqTable`] the index layer uses on
//! CDR attributes: each monitor tick samples windowed deltas of the
//! metric registry (shed counts, fault retries, corruption events,
//! request errors, windowed p99, cache hit ratio), quantizes every
//! stream into a small ordered category alphabet ("none" / "some" /
//! "storm", ...), and counts the category into the stream's frequency
//! table. A tick's category is an **anomaly** when it is
//!
//! 1. *rare*: its relative frequency across all ticks so far is below θ
//!    (the paper's highlight rule, via [`FreqTable::rare_values`]), and
//! 2. *worse than normal*: strictly more severe than the stream's modal
//!    category — rarity alone would also flag an unusually *good* tick.
//!
//! Streams are split by determinism. **Deterministic** streams (shed
//! storms aside: fault retries, replica corruption, request/protocol
//! errors) are identically "none" on every tick of a fault-free run
//! regardless of thread timing, so a calm seeded run reports exactly
//! zero deterministic anomalies — the CI gate. **Timing** streams
//! (shed pressure, windowed latency, cache hit ratio) depend on
//! scheduling; their anomalies are surfaced as advisory records but
//! never gate.

use crate::index::highlights::FreqTable;
use obs::{Histogram, Registry};
use std::collections::VecDeque;

/// Tuning of the meta-highlights monitor.
#[derive(Debug, Clone, Copy)]
pub struct MetaConfig {
    /// Rarity threshold θ applied to every stream's category table.
    /// System streams have a handful of ticks, not millions of records,
    /// so θ here is much larger than the index layer's per-day θ.
    pub theta: f64,
    /// Ticks of history required before detection arms (a one-tick
    /// "history" would make every first observation rare).
    pub min_ticks: u64,
    /// Bound on retained [`AnomalyRecord`]s (oldest dropped first).
    pub history: usize,
}

impl Default for MetaConfig {
    fn default() -> Self {
        Self {
            theta: 0.3,
            min_ticks: 4,
            history: 64,
        }
    }
}

/// Whether a stream's category is a pure function of the workload or
/// depends on thread timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    Deterministic,
    Timing,
}

/// One θ-rarity detection on a telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRecord {
    /// Monitor tick (1-based) the anomaly fired on.
    pub tick: u64,
    /// Stream name (`"dfs.retry"`, `"serve.shed"`, ...).
    pub stream: &'static str,
    /// The rare category observed this tick.
    pub category: String,
    /// Its relative frequency (< θ).
    pub share: f64,
    /// The stream's modal (normal) category.
    pub modal: String,
    pub kind: StreamKind,
}

/// Windowed-delta samplers over the registry, one per stream. Each keeps
/// the previous raw counter values so a tick sees only what happened
/// since the last tick.
enum Sampler {
    /// Shed pressure relative to served queries in the window.
    Shed { prev_shed: u64, prev_ops: u64 },
    /// dfs replica retry attempts.
    FaultRetry { prev: u64 },
    /// dfs checksum mismatches + read failovers (replica corruption).
    Corruption { prev: u64 },
    /// Request + protocol errors.
    Errors { prev: u64 },
    /// Windowed p99 of `serve.latency_us{class="interactive"}`, bucketed
    /// into power-of-4 regimes.
    Latency { prev: Vec<u64> },
    /// Windowed epoch-cache hit ratio.
    CacheHit { prev_hits: u64, prev_misses: u64 },
    /// Worker panic isolations, poisoned-lock recoveries and worker
    /// respawns — the serve tier absorbing damage that would otherwise
    /// have been fatal.
    Survive { prev: u64 },
    /// Budget interruptions: client cancellations + expired end-to-end
    /// deadlines.
    Interrupt { prev: u64 },
    /// Replica circuit-breaker trips and half-open reopens.
    Breaker { prev: u64 },
}

struct Stream {
    name: &'static str,
    kind: StreamKind,
    freq: FreqTable,
    sampler: Sampler,
}

fn delta(reg: &Registry, name: &str, prev: &mut u64) -> u64 {
    let cur = reg.counter(name).get();
    let d = cur.saturating_sub(*prev);
    *prev = cur;
    d
}

impl Stream {
    /// Quantize this tick's window into a category. Returns the category
    /// plus its severity rank (0 = normal, higher = worse).
    fn sample(&mut self, reg: &Registry) -> (String, u32) {
        match &mut self.sampler {
            Sampler::Shed {
                prev_shed,
                prev_ops,
            } => {
                let cur_shed = reg.counter("serve.queue.shed").get()
                    + reg.counter("serve.shed.deadline").get();
                let shed = cur_shed.saturating_sub(*prev_shed);
                *prev_shed = cur_shed;
                let ops = delta(reg, "serve.queries", prev_ops);
                if shed == 0 {
                    ("none".into(), 0)
                } else if shed * 10 < (shed + ops).max(1) {
                    ("minor".into(), 1)
                } else {
                    ("storm".into(), 2)
                }
            }
            Sampler::FaultRetry { prev } => {
                let d = delta(reg, "dfs.retry.attempts", prev);
                if d == 0 {
                    ("none".into(), 0)
                } else if d < 8 {
                    ("some".into(), 1)
                } else {
                    ("burst".into(), 2)
                }
            }
            Sampler::Corruption { prev } => {
                let cur = reg.counter("dfs.fault.checksum_mismatches").get()
                    + reg.counter("dfs.fault.read_failovers").get();
                let d = cur.saturating_sub(*prev);
                *prev = cur;
                if d == 0 {
                    ("none".into(), 0)
                } else {
                    ("burst".into(), 1)
                }
            }
            Sampler::Errors { prev } => {
                let cur = reg.counter("serve.request_errors").get()
                    + reg.counter("serve.protocol_errors").get();
                let d = cur.saturating_sub(*prev);
                *prev = cur;
                if d == 0 {
                    ("none".into(), 0)
                } else {
                    ("some".into(), 1)
                }
            }
            Sampler::Latency { prev } => {
                let h = reg.histogram_labeled("serve.latency_us", &[("class", "interactive")]);
                let cur = h.bucket_counts();
                let window: Vec<u64> = cur
                    .iter()
                    .zip(prev.iter().chain(std::iter::repeat(&0)))
                    .map(|(c, p)| c.saturating_sub(*p))
                    .collect();
                *prev = cur;
                let p99 = Histogram::quantile_of_counts(&window, 0.99);
                if p99 == 0 {
                    // No interactive traffic this window.
                    return ("idle".into(), 0);
                }
                // Power-of-4 regime: p99 must quadruple to change
                // category, so ordinary jitter stays in one bucket.
                let regime = (64 - p99.leading_zeros()).div_ceil(2);
                (format!("p99~4^{regime}us"), regime)
            }
            Sampler::CacheHit {
                prev_hits,
                prev_misses,
            } => {
                let hits = delta(reg, "serve.cache.hit", prev_hits);
                let misses = delta(reg, "serve.cache.miss", prev_misses);
                if hits + misses == 0 {
                    ("idle".into(), 0)
                } else {
                    let ratio = hits as f64 / (hits + misses) as f64;
                    if ratio >= 0.5 {
                        ("high".into(), 0)
                    } else if ratio >= 0.1 {
                        ("mid".into(), 1)
                    } else {
                        ("low".into(), 2)
                    }
                }
            }
            Sampler::Survive { prev } => {
                let cur = reg.counter("serve.panics").get()
                    + reg.counter("serve.worker.respawns").get()
                    + reg.counter("serve.lock.poison_recovered").get();
                let d = cur.saturating_sub(*prev);
                *prev = cur;
                if d == 0 {
                    ("none".into(), 0)
                } else {
                    ("isolated".into(), 1)
                }
            }
            Sampler::Interrupt { prev } => {
                let cur = reg.counter("serve.cancelled").get()
                    + reg.counter("serve.deadline.expired").get();
                let d = cur.saturating_sub(*prev);
                *prev = cur;
                if d == 0 {
                    ("none".into(), 0)
                } else {
                    ("some".into(), 1)
                }
            }
            Sampler::Breaker { prev } => {
                let cur = reg.counter("dfs.breaker.trips").get()
                    + reg.counter("dfs.breaker.reopens").get();
                let d = cur.saturating_sub(*prev);
                *prev = cur;
                if d == 0 {
                    ("none".into(), 0)
                } else {
                    ("tripping".into(), 1)
                }
            }
        }
    }
}

/// Counts summary for introspection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaSummary {
    pub ticks: u64,
    pub anomalies_total: u64,
    /// Anomalies on deterministic streams only — the CI gate value.
    pub anomalies_deterministic: u64,
}

/// The periodic self-monitor. Drive it with [`MetaMonitor::tick`] —
/// manually at workload boundaries (deterministic benchmarks) or from an
/// interval thread (a live server).
pub struct MetaMonitor {
    config: MetaConfig,
    ticks: u64,
    streams: Vec<Stream>,
    severities: Vec<std::collections::HashMap<String, u32>>,
    anomalies: VecDeque<AnomalyRecord>,
    total: u64,
    deterministic: u64,
}

impl Default for MetaMonitor {
    fn default() -> Self {
        Self::new(MetaConfig::default())
    }
}

impl MetaMonitor {
    pub fn new(config: MetaConfig) -> Self {
        let streams = vec![
            Stream {
                name: "serve.shed",
                kind: StreamKind::Timing,
                freq: FreqTable::default(),
                sampler: Sampler::Shed {
                    prev_shed: 0,
                    prev_ops: 0,
                },
            },
            Stream {
                name: "dfs.retry",
                kind: StreamKind::Deterministic,
                freq: FreqTable::default(),
                sampler: Sampler::FaultRetry { prev: 0 },
            },
            Stream {
                name: "dfs.corruption",
                kind: StreamKind::Deterministic,
                freq: FreqTable::default(),
                sampler: Sampler::Corruption { prev: 0 },
            },
            Stream {
                name: "serve.errors",
                kind: StreamKind::Deterministic,
                freq: FreqTable::default(),
                sampler: Sampler::Errors { prev: 0 },
            },
            Stream {
                name: "serve.latency",
                kind: StreamKind::Timing,
                freq: FreqTable::default(),
                sampler: Sampler::Latency { prev: Vec::new() },
            },
            Stream {
                name: "serve.cache",
                kind: StreamKind::Timing,
                freq: FreqTable::default(),
                sampler: Sampler::CacheHit {
                    prev_hits: 0,
                    prev_misses: 0,
                },
            },
            // Survivability events are driven purely by the workload (a
            // poison query always panics, a calm run never does), so the
            // stream gates CI like the other deterministic ones.
            Stream {
                name: "serve.survive",
                kind: StreamKind::Deterministic,
                freq: FreqTable::default(),
                sampler: Sampler::Survive { prev: 0 },
            },
            // Whether a Cancel frame or a deadline lands before the
            // request finishes is a race against evaluation: timing.
            Stream {
                name: "serve.interrupt",
                kind: StreamKind::Timing,
                freq: FreqTable::default(),
                sampler: Sampler::Interrupt { prev: 0 },
            },
            // Breaker trips follow the dfs fault plan's op clock; under
            // concurrent workers the interleaving can shift which tick a
            // trip lands on, never whether a calm run stays at "none".
            Stream {
                name: "dfs.breaker",
                kind: StreamKind::Timing,
                freq: FreqTable::default(),
                sampler: Sampler::Breaker { prev: 0 },
            },
        ];
        let severities = streams.iter().map(|_| Default::default()).collect();
        Self {
            config,
            ticks: 0,
            streams,
            severities,
            anomalies: VecDeque::new(),
            total: 0,
            deterministic: 0,
        }
    }

    pub fn config(&self) -> MetaConfig {
        self.config
    }

    /// Sample every stream once and run θ-rarity detection; returns the
    /// anomalies that fired *this* tick. Also maintains the
    /// `meta.ticks` / `meta.anomalies*` counters in `reg` so the monitor
    /// shows up in its own exports.
    pub fn tick(&mut self, reg: &Registry) -> Vec<AnomalyRecord> {
        self.ticks += 1;
        reg.counter("meta.ticks").inc();
        let mut fired = Vec::new();
        for (stream, severities) in self.streams.iter_mut().zip(&mut self.severities) {
            let (category, severity) = stream.sample(reg);
            severities.insert(category.clone(), severity);
            stream.freq.add(category.clone());
            if self.ticks < self.config.min_ticks {
                continue;
            }
            let Some((modal, _)) = stream.freq.modal() else {
                continue;
            };
            let modal = modal.to_string();
            let modal_severity = severities.get(&modal).copied().unwrap_or(0);
            let is_rare = stream
                .freq
                .rare_values(self.config.theta)
                .iter()
                .any(|(v, _, _)| *v == category);
            if is_rare && severity > modal_severity {
                let record = AnomalyRecord {
                    tick: self.ticks,
                    stream: stream.name,
                    category: category.clone(),
                    share: stream.freq.share(&category),
                    modal,
                    kind: stream.kind,
                };
                reg.counter("meta.anomalies").inc();
                self.total += 1;
                if stream.kind == StreamKind::Deterministic {
                    reg.counter("meta.anomalies.deterministic").inc();
                    self.deterministic += 1;
                }
                fired.push(record.clone());
                self.anomalies.push_back(record);
                while self.anomalies.len() > self.config.history {
                    self.anomalies.pop_front();
                }
            }
        }
        fired
    }

    pub fn summary(&self) -> MetaSummary {
        MetaSummary {
            ticks: self.ticks,
            anomalies_total: self.total,
            anomalies_deterministic: self.deterministic,
        }
    }

    /// Retained anomaly records, oldest first (bounded by
    /// [`MetaConfig::history`]).
    pub fn recent(&self) -> Vec<AnomalyRecord> {
        self.anomalies.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_ticks(m: &mut MetaMonitor, reg: &Registry, n: usize) {
        for _ in 0..n {
            reg.counter("serve.queries").add(10);
            reg.counter("serve.cache.hit").add(8);
            reg.counter("serve.cache.miss").add(2);
            reg.histogram_labeled("serve.latency_us", &[("class", "interactive")])
                .record(900);
            let fired = m.tick(reg);
            assert!(fired.is_empty(), "calm tick fired {fired:?}");
        }
    }

    #[test]
    fn calm_runs_report_zero_anomalies() {
        let reg = Registry::new();
        let mut m = MetaMonitor::default();
        calm_ticks(&mut m, &reg, 10);
        let s = m.summary();
        assert_eq!(s.ticks, 10);
        assert_eq!(s.anomalies_total, 0);
        assert_eq!(s.anomalies_deterministic, 0);
        assert_eq!(reg.counter("meta.ticks").get(), 10);
        assert_eq!(reg.counter("meta.anomalies").get(), 0);
    }

    #[test]
    fn fault_retry_burst_fires_a_deterministic_anomaly() {
        let reg = Registry::new();
        let mut m = MetaMonitor::default();
        calm_ticks(&mut m, &reg, 8);
        // Injected fault storm: a burst of replica retries in one window.
        reg.counter("dfs.retry.attempts").add(40);
        let fired = m.tick(&reg);
        let retry: Vec<_> = fired.iter().filter(|a| a.stream == "dfs.retry").collect();
        assert_eq!(retry.len(), 1, "{fired:?}");
        assert_eq!(retry[0].category, "burst");
        assert_eq!(retry[0].modal, "none");
        assert_eq!(retry[0].kind, StreamKind::Deterministic);
        assert!(retry[0].share < m.config().theta);
        assert_eq!(m.summary().anomalies_deterministic, 1);
        assert_eq!(reg.counter("meta.anomalies.deterministic").get(), 1);
    }

    #[test]
    fn corruption_and_error_bursts_fire() {
        let reg = Registry::new();
        let mut m = MetaMonitor::default();
        calm_ticks(&mut m, &reg, 6);
        reg.counter("dfs.fault.checksum_mismatches").add(3);
        reg.counter("serve.request_errors").add(2);
        let fired = m.tick(&reg);
        let streams: Vec<&str> = fired.iter().map(|a| a.stream).collect();
        assert!(streams.contains(&"dfs.corruption"), "{fired:?}");
        assert!(streams.contains(&"serve.errors"), "{fired:?}");
    }

    #[test]
    fn shed_storm_fires_as_timing_advisory() {
        let reg = Registry::new();
        let mut m = MetaMonitor::default();
        calm_ticks(&mut m, &reg, 8);
        // Storm: sheds dominate the window.
        reg.counter("serve.queue.shed").add(50);
        reg.counter("serve.queries").add(5);
        let fired = m.tick(&reg);
        let shed: Vec<_> = fired.iter().filter(|a| a.stream == "serve.shed").collect();
        assert_eq!(shed.len(), 1, "{fired:?}");
        assert_eq!(shed[0].category, "storm");
        assert_eq!(shed[0].kind, StreamKind::Timing);
        // Timing anomalies never count toward the deterministic gate.
        assert_eq!(m.summary().anomalies_deterministic, 0);
        assert!(m.summary().anomalies_total >= 1);
    }

    #[test]
    fn p99_inflation_fires_and_jitter_does_not() {
        let reg = Registry::new();
        let mut m = MetaMonitor::default();
        let h = reg.histogram_labeled("serve.latency_us", &[("class", "interactive")]);
        // 8 calm ticks around ~1ms with ±30% jitter: same power-of-4
        // regime, no anomaly.
        for i in 0..8u64 {
            reg.counter("serve.queries").add(10);
            for _ in 0..20 {
                h.record(900 + (i % 3) * 250);
            }
            assert!(m.tick(&reg).is_empty());
        }
        // p99 inflates 40×.
        for _ in 0..20 {
            h.record(40_000);
        }
        let fired = m.tick(&reg);
        let lat: Vec<_> = fired
            .iter()
            .filter(|a| a.stream == "serve.latency")
            .collect();
        assert_eq!(lat.len(), 1, "{fired:?}");
        assert!(lat[0].category.starts_with("p99~4^"), "{:?}", lat[0]);
    }

    #[test]
    fn detection_is_armed_only_after_min_ticks() {
        let reg = Registry::new();
        let mut m = MetaMonitor::new(MetaConfig {
            min_ticks: 4,
            ..MetaConfig::default()
        });
        // A burst on the very first tick is "normal" — no history says
        // otherwise yet.
        reg.counter("dfs.retry.attempts").add(100);
        assert!(m.tick(&reg).is_empty());
        assert_eq!(m.summary().anomalies_total, 0);
    }

    #[test]
    fn history_is_bounded() {
        let reg = Registry::new();
        let mut m = MetaMonitor::new(MetaConfig {
            history: 3,
            ..MetaConfig::default()
        });
        calm_ticks(&mut m, &reg, 8);
        for _ in 0..6 {
            // Alternate bursts so the category stays rare-ish... simply
            // drive distinct deterministic streams repeatedly.
            reg.counter("dfs.fault.checksum_mismatches").add(1);
            reg.counter("serve.request_errors").add(1);
            reg.counter("dfs.retry.attempts").add(20);
            m.tick(&reg);
        }
        assert!(m.recent().len() <= 3);
    }
}
