//! SPATE: a telco big-data exploration framework with compression and
//! decaying — the primary contribution of Costa et al., ICDE 2017.
//!
//! SPATE minimizes (i) the storage space needed to incrementally retain
//! telco data over time and (ii) the response time of spatio-temporal data
//! exploration queries over recent data. It is layered exactly as the paper
//! describes:
//!
//! * **Storage layer** ([`storage`]) — every 30-minute snapshot is passed
//!   through a lossless codec ([`codecs`]) and stored on a replicated
//!   filesystem ([`dfs`]).
//! * **Indexing layer** ([`index`]) — a multi-resolution temporal tree
//!   (year → month → day → epoch) maintained by the *incremence* module
//!   (right-most-path insertion), enriched by the *highlights* module
//!   (θ-threshold event summaries rolled up day → month → year like an
//!   OLAP cube), and pruned by the *decay* module ("Evict Oldest
//!   Individuals" data fungus).
//! * **Application layer** ([`query`]) — data exploration queries
//!   `Q(a, b, w)` with attribute selection `a`, spatial bounding box `b`
//!   and temporal window `w`; plus the SQL interface in the `spate-sql`
//!   crate.
//!
//! The [`framework`] module hosts the three comparable systems of the
//! paper's evaluation — RAW, SHAHED and SPATE — behind one trait, and
//! [`tasks`] implements the eight workloads T1–T8 used in Figs. 11–12.
//!
//! # Quickstart
//!
//! ```
//! use spate_core::framework::{ExplorationFramework, SpateFramework};
//! use spate_core::query::Query;
//! use telco_trace::{TraceConfig, TraceGenerator};
//! use telco_trace::cells::BoundingBox;
//!
//! // Generate a tiny deterministic trace and ingest it into SPATE.
//! let mut generator = TraceGenerator::new(TraceConfig::tiny());
//! let layout = generator.layout().clone();
//! let mut spate = SpateFramework::in_memory(layout);
//! for snapshot in generator.by_ref().take(4) {
//!     spate.ingest(&snapshot);
//! }
//!
//! // Explore: upflux/downflux in the whole region over the first hour.
//! let q = Query::new(&["upflux", "downflux"], BoundingBox::everything())
//!     .with_epoch_range(0, 1);
//! let result = spate.query(&q);
//! assert!(result.is_exact());
//! ```

pub mod delta_store;
pub mod framework;
pub mod index;
pub mod meta;
pub mod query;
pub mod session;
pub mod storage;
pub mod tasks;

pub use delta_store::DeltaSnapshotStore;
pub use framework::{
    ExplorationFramework, RawFramework, RecoveryReport, ShahedFramework, SpateFramework,
    StoreObserver,
};
pub use index::decay::{DecayPolicy, DecayReport};
pub use index::heat::{Band, HeatConfig, HeatLedger, HeatReport};
pub use index::highlights::{HighlightConfig, Highlights};
pub use index::TemporalIndex;
pub use meta::{AnomalyRecord, MetaConfig, MetaMonitor, MetaSummary, StreamKind};
pub use query::{profile_query, Coverage, Query, QueryResult};
pub use session::ExplorerSession;
pub use storage::SnapshotStore;
