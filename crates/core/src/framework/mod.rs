//! The three compared frameworks of the paper's evaluation (§VII-A),
//! behind one trait:
//!
//! * [`RawFramework`] — "the default solution that stores the telco
//!   snapshots as data files on the HDFS file system without any
//!   compression, indexing or decaying."
//! * [`ShahedFramework`] — raw storage plus the isolated spatio-temporal
//!   aggregate index of SHAHED; "appropriate for online querying and
//!   visualization, but does not deploy compression or decaying."
//! * [`SpateFramework`] — this paper: compression + multi-resolution
//!   index + highlights + decay.

mod raw;
mod shahed_fw;
mod spate;

pub use raw::RawFramework;
pub use shahed_fw::ShahedFramework;
pub use spate::{RecoveryReport, SpateFramework};

use crate::query::{Query, QueryResult};
use telco_trace::cells::CellLayout;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Cost of ingesting one snapshot (paper metric: "Ingestion Time ...
/// includes the compression time needed to compress d and the time needed
/// to run the Incremence module").
#[derive(Debug, Clone, Copy)]
pub struct IngestStats {
    pub epoch: EpochId,
    pub seconds: f64,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
}

/// Disk usage (paper metric: "Space ... the total space S′ that data and
/// index occupy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceReport {
    /// Logical bytes of stored snapshot files (pre-replication).
    pub data_bytes: u64,
    /// Bytes of index structures (highlights / aggregate trees).
    pub index_bytes: u64,
}

impl SpaceReport {
    pub fn total(&self) -> u64 {
        self.data_bytes + self.index_bytes
    }
}

/// A telco data exploration framework under evaluation.
pub trait ExplorationFramework {
    fn name(&self) -> &'static str;

    /// The static cell inventory shared by all frameworks.
    fn layout(&self) -> &CellLayout;

    /// Ingest one arriving snapshot, measuring the cost.
    fn ingest(&mut self, snapshot: &Snapshot) -> IngestStats;

    /// Current disk usage of data + index.
    fn space(&self) -> SpaceReport;

    /// Load one epoch's snapshot at full resolution, if retained.
    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot>;

    /// Load every retained snapshot in the inclusive window (the scan path
    /// the tasks T1–T8 run on).
    fn scan(&self, start: EpochId, end: EpochId) -> Vec<Snapshot> {
        (start.0..=end.0)
            .filter_map(|e| self.load_epoch(EpochId(e)))
            .collect()
    }

    /// Evaluate a data exploration query `Q(a, b, w)`.
    fn query(&self, q: &Query) -> QueryResult;

    /// Staleness epoch counter: bumped on every mutation that can change
    /// what a window query answers (ingest, decay eviction, recovery
    /// repairs). Caches key their entries by this value and treat any
    /// change as an invalidation signal.
    fn version(&self) -> u64;
}

/// Observer of warehouse mutations, for cache layers that must drop
/// entries exactly when the tree changes. Hooks fire synchronously while
/// the mutation still holds exclusive access to the framework, so an
/// observer never races a reader that could re-populate a stale entry
/// (readers run strictly before or strictly after the whole mutation).
pub trait StoreObserver: Send + Sync {
    /// A new snapshot was committed and indexed.
    fn snapshot_ingested(&self, _epoch: EpochId) {}
    /// These epochs lost their full-resolution leaf (decay eviction or a
    /// recovery scan marking unreadable leaves absent).
    fn epochs_evicted(&self, _epochs: &[EpochId]) {}
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use telco_trace::{TraceConfig, TraceGenerator};

    /// A tiny ingested trace for framework tests: returns (layout,
    /// snapshots).
    pub fn tiny_trace(n: usize) -> (CellLayout, Vec<Snapshot>) {
        let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
        let layout = generator.layout().clone();
        let snaps: Vec<Snapshot> = (&mut generator).take(n).collect();
        (layout, snaps)
    }
}
