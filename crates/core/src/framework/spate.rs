//! The SPATE framework: compression + multi-resolution index + highlights
//! + decay, assembled from the storage and indexing layers.

use crate::framework::{ExplorationFramework, IngestStats, SpaceReport};
use crate::index::decay::{decay, DecayPolicy, DecayReport};
use crate::index::highlights::HighlightConfig;
use crate::index::persist::{self, PersistError};
use crate::index::{Covering, TemporalIndex};
use crate::query::{project_snapshots, Query, QueryResult};
use crate::storage::SnapshotStore;
use codecs::{Codec, GzipLite};
use dfs::Dfs;
use std::collections::HashSet;
use std::sync::Arc;
use telco_trace::cells::CellLayout;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// The framework proposed by the paper. Defaults to the GZIP-class codec,
/// matching §IV-C: "In our implementation and evaluation, we chose the
/// GZIP library".
pub struct SpateFramework {
    store: SnapshotStore,
    layout: CellLayout,
    index: TemporalIndex,
    policy: DecayPolicy,
    decay_log: DecayReport,
}

impl SpateFramework {
    pub fn new(dfs: Dfs, layout: CellLayout) -> Self {
        Self::with_codec(dfs, layout, Arc::new(GzipLite::default()))
    }

    pub fn with_codec(dfs: Dfs, layout: CellLayout, codec: Arc<dyn Codec>) -> Self {
        Self {
            store: SnapshotStore::new(dfs, codec).with_root("/spate"),
            layout,
            index: TemporalIndex::new(HighlightConfig::default()),
            policy: DecayPolicy::never(),
            decay_log: DecayReport::default(),
        }
    }

    pub fn in_memory(layout: CellLayout) -> Self {
        Self::new(Dfs::in_memory(), layout)
    }

    /// Install a decay policy; a pass runs automatically after every
    /// ingested snapshot ("a continuous decaying process ... purged from
    /// replicated storage in a sliding window manner").
    pub fn with_decay(mut self, policy: DecayPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_highlight_config(mut self, config: HighlightConfig) -> Self {
        assert_eq!(
            self.index.last_epoch(),
            None,
            "highlight config must be set before ingestion"
        );
        self.index = TemporalIndex::new(config);
        self
    }

    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    pub fn index(&self) -> &TemporalIndex {
        &self.index
    }

    /// Cumulative effects of all decay passes so far.
    pub fn decay_log(&self) -> DecayReport {
        self.decay_log
    }

    /// Run a decay pass explicitly at a given "now".
    pub fn run_decay(&mut self, now: EpochId) -> DecayReport {
        let report =
            decay(&mut self.index, now, &self.policy, &self.store).expect("decay eviction failed");
        self.decay_log.merge(&report);
        report
    }

    /// DFS path of the persisted index image.
    const INDEX_PATH: &'static str = "/spate/_index.img";

    /// Persist the temporal index (compressed) to the filesystem so the
    /// warehouse survives restarts. Returns the stored image size.
    pub fn persist_index(&self) -> Result<u64, crate::storage::StorageError> {
        let image = persist::to_bytes(&self.index);
        let packed = GzipLite::default().compress(&image);
        let dfs = self.store.dfs();
        if dfs.exists(Self::INDEX_PATH) {
            dfs.delete(Self::INDEX_PATH)?;
        }
        dfs.write(Self::INDEX_PATH, &packed)?;
        Ok(packed.len() as u64)
    }

    /// Rebuild a framework from a filesystem holding both the persisted
    /// index image and the (not yet decayed) snapshot files.
    pub fn restore(dfs: Dfs, layout: CellLayout) -> Result<Self, RestoreError> {
        let packed = dfs.read(Self::INDEX_PATH).map_err(RestoreError::Dfs)?;
        let image = GzipLite::default()
            .decompress(&packed)
            .map_err(RestoreError::Codec)?;
        let index = persist::from_bytes(&image).map_err(RestoreError::Image)?;
        Ok(Self {
            store: crate::storage::SnapshotStore::new(dfs, Arc::new(GzipLite::default()))
                .with_root("/spate"),
            layout,
            index,
            policy: DecayPolicy::never(),
            decay_log: DecayReport::default(),
        })
    }
}

/// Errors rebuilding a framework from persisted state.
#[derive(Debug)]
pub enum RestoreError {
    Dfs(dfs::DfsError),
    Codec(codecs::CodecError),
    Image(PersistError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Dfs(e) => write!(f, "reading index image: {e}"),
            RestoreError::Codec(e) => write!(f, "decompressing index image: {e}"),
            RestoreError::Image(e) => write!(f, "decoding index image: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl ExplorationFramework for SpateFramework {
    fn name(&self) -> &'static str {
        "SPATE"
    }

    fn layout(&self) -> &CellLayout {
        &self.layout
    }

    fn ingest(&mut self, snapshot: &Snapshot) -> IngestStats {
        // The ingest span is also the reported-seconds clock: stage spans
        // (segment/compress/dfs.write from the storage layer, incremence
        // with nested highlights, decay) nest under it, so the flame
        // table's per-stage self-times add up to the figure-7 numbers.
        let span = obs::span("spate.ingest");
        // Storage layer: compress + persist.
        let stored = self.store.store(snapshot).expect("spate store");
        // Indexing layer: incremence + highlights.
        {
            let _s = obs::span("incremence");
            self.index.incremence(snapshot, &stored);
        }
        // Decaying: continuous sliding-window eviction.
        if self.policy != DecayPolicy::never() {
            self.run_decay(snapshot.epoch);
        }
        let seconds = span.finish_secs();
        IngestStats {
            epoch: snapshot.epoch,
            seconds,
            raw_bytes: stored.raw_bytes,
            stored_bytes: stored.stored_bytes,
        }
    }

    fn space(&self) -> SpaceReport {
        SpaceReport {
            data_bytes: self.store.stored_bytes(),
            index_bytes: self.index.index_bytes(),
        }
    }

    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot> {
        self.store.load(epoch).ok()
    }

    fn query(&self, q: &Query) -> QueryResult {
        let _span = obs::span("spate.query");
        let covering = {
            let _s = obs::span("index_probe");
            self.index.find_covering(q.window.0, q.window.1)
        };
        match covering {
            Covering::Exact(leaves) => {
                let _s = obs::span("scan");
                let snaps: Vec<Snapshot> = leaves
                    .iter()
                    .filter_map(|l| self.store.load(l.epoch).ok())
                    .collect();
                QueryResult::Exact(project_snapshots(&snaps, q, &self.layout))
            }
            Covering::Summary {
                resolution,
                highlights,
            } => {
                let cells: HashSet<u32> = self.layout.cells_in(&q.bbox).into_iter().collect();
                QueryResult::Summary {
                    resolution,
                    highlights: highlights.filter_cells(&cells),
                }
            }
            Covering::Unavailable => QueryResult::Unavailable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use telco_trace::cells::BoundingBox;
    use telco_trace::time::EPOCHS_PER_DAY;
    use telco_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn compresses_telco_snapshots_well() {
        let (layout, snaps) = tiny_trace(8);
        let mut spate = SpateFramework::in_memory(layout.clone());
        let mut raw_total = 0u64;
        let mut stored_total = 0u64;
        for s in &snaps {
            let st = spate.ingest(s);
            raw_total += st.raw_bytes;
            stored_total += st.stored_bytes;
        }
        // Night epochs at unit-test scale are small files, so the ratio is
        // below the ~7-9x seen on realistic snapshot sizes (see the Table I
        // bench); 4x is the conservative floor here.
        let ratio = raw_total as f64 / stored_total as f64;
        assert!(
            ratio > 3.5,
            "telco snapshots should compress well, got {ratio:.2}x"
        );
    }

    #[test]
    fn exact_queries_over_recent_data() {
        let (layout, snaps) = tiny_trace(4);
        let mut spate = SpateFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
        }
        let q =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(1, 2);
        let result = spate.query(&q);
        assert!(result.is_exact());
        let expected: usize = snaps[1..=2].iter().map(|s| s.cdr.len()).sum();
        assert_eq!(result.row_count(), expected);
    }

    #[test]
    fn decayed_windows_answer_with_summaries() {
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = 4;
        let generator = TraceGenerator::new(config);
        let layout = generator.layout().clone();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let mut spate = SpateFramework::in_memory(layout).with_decay(policy);
        for s in generator {
            spate.ingest(&s);
        }
        assert!(spate.decay_log().leaves_evicted > 0);

        // Day 0 decayed: summary at day resolution.
        let q = Query::new(&["upflux"], BoundingBox::everything())
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        match spate.query(&q) {
            QueryResult::Summary {
                resolution,
                highlights,
            } => {
                assert_eq!(resolution.label(), "day");
                assert!(highlights.cdr_records > 0);
            }
            other => panic!("expected summary, got {other:?}"),
        }

        // The most recent day stays exact.
        let last = spate.index().last_epoch().unwrap();
        let q = Query::new(&["upflux"], BoundingBox::everything())
            .with_window(EpochId(last.0 - 5), last);
        assert!(spate.query(&q).is_exact());
    }

    #[test]
    fn space_is_much_smaller_than_raw() {
        // Enough epochs that highlight overhead amortizes against data.
        let (layout, snaps) = tiny_trace(24);
        let mut spate = SpateFramework::in_memory(layout.clone());
        let mut raw = crate::framework::RawFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
            raw.ingest(s);
        }
        let spate_space = spate.space().total();
        let raw_space = raw.space().total();
        // At unit-test scale the per-day highlight overhead is still large
        // relative to one day of data; the full-trace benches show the
        // paper's ~order-of-magnitude gap.
        assert!(
            (spate_space as f64) < raw_space as f64 / 2.0,
            "spate {spate_space} vs raw {raw_space}"
        );
    }

    #[test]
    fn summary_respects_bbox() {
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = 2;
        let generator = TraceGenerator::new(config);
        let layout = generator.layout().clone();
        let policy = DecayPolicy {
            full_resolution_days: 0,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let mut spate = SpateFramework::in_memory(layout.clone()).with_decay(policy);
        for s in generator {
            spate.ingest(&s);
        }
        let q_all = Query::new(&["upflux"], BoundingBox::everything())
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        let q_some = Query::new(&["upflux"], BoundingBox::new(0.0, 0.0, 38_000.0, 38_000.0))
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        let (
            QueryResult::Summary {
                highlights: all, ..
            },
            QueryResult::Summary {
                highlights: some, ..
            },
        ) = (spate.query(&q_all), spate.query(&q_some))
        else {
            panic!("expected summaries");
        };
        assert!(some.per_cell.len() < all.per_cell.len());
    }

    #[test]
    fn persist_and_restore_round_trip() {
        let (layout, snaps) = tiny_trace(6);
        let shared_dfs = dfs::Dfs::in_memory();
        let mut spate = SpateFramework::new(shared_dfs.clone(), layout.clone());
        for s in &snaps {
            spate.ingest(s);
        }
        let image_bytes = spate.persist_index().unwrap();
        assert!(image_bytes > 0);

        // "Restart": rebuild from the same filesystem.
        let restored = SpateFramework::restore(shared_dfs, layout).unwrap();
        assert_eq!(restored.index().last_epoch(), spate.index().last_epoch());
        assert_eq!(
            restored.index().root_highlights().cdr_records,
            spate.index().root_highlights().cdr_records
        );
        // Queries work identically after restore.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(1, 4);
        assert_eq!(restored.query(&q).row_count(), spate.query(&q).row_count());
        // Re-persisting overwrites cleanly.
        spate.persist_index().unwrap();
    }

    #[test]
    fn restore_without_image_fails_cleanly() {
        let (layout, _) = tiny_trace(1);
        match SpateFramework::restore(dfs::Dfs::in_memory(), layout) {
            Err(RestoreError::Dfs(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("restore should fail without an image"),
        }
    }

    #[test]
    fn unavailable_for_future_windows() {
        let (layout, snaps) = tiny_trace(2);
        let mut spate = SpateFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
        }
        // A window inside a period that has an index node (January 2016)
        // answers with that node's summary — the paper's "node whose
        // period completely covers w" semantics.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(500, 600);
        assert!(matches!(spate.query(&q), QueryResult::Summary { .. }));
        // A window wholly outside any node's period is unavailable.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(20_000, 20_100);
        assert!(matches!(spate.query(&q), QueryResult::Unavailable));
    }
}
