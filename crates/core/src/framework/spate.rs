//! The SPATE framework: compression + multi-resolution index + highlights
//! + decay, assembled from the storage and indexing layers.

use crate::framework::{ExplorationFramework, IngestStats, SpaceReport, StoreObserver};
use crate::index::decay::{decay_with_fungus_traced, DecayPolicy, DecayReport, Fungus};
use crate::index::highlights::HighlightConfig;
use crate::index::persist::{self, PersistError};
use crate::index::{Covering, TemporalIndex};
use crate::query::{project_snapshots, Coverage, Query, QueryResult};
use crate::storage::{SnapshotStore, StorageError, StoredSnapshot};
use codecs::{Codec, GzipLite};
use dfs::Dfs;
use std::collections::HashSet;
use std::sync::Arc;
use telco_trace::cells::CellLayout;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// The framework proposed by the paper. Defaults to the GZIP-class codec,
/// matching §IV-C: "In our implementation and evaluation, we chose the
/// GZIP library".
pub struct SpateFramework {
    store: SnapshotStore,
    layout: CellLayout,
    index: TemporalIndex,
    policy: DecayPolicy,
    decay_log: DecayReport,
    /// Staleness epoch counter, bumped on every mutation (see
    /// [`ExplorationFramework::version`]).
    version: u64,
    /// Cache layers notified synchronously on every mutation.
    observers: Vec<Arc<dyn StoreObserver>>,
}

impl SpateFramework {
    pub fn new(dfs: Dfs, layout: CellLayout) -> Self {
        Self::with_codec(dfs, layout, Arc::new(GzipLite::default()))
    }

    pub fn with_codec(dfs: Dfs, layout: CellLayout, codec: Arc<dyn Codec>) -> Self {
        Self::with_store(SnapshotStore::new(dfs, codec).with_root("/spate"), layout)
    }

    /// SPATE over the content-addressed store: chunk-level dedup, Merkle
    /// manifests, and decay that garbage-collects shared chunks. Same
    /// index/query/decay behavior as [`Self::new`]; only the storage
    /// backend changes.
    pub fn with_cas(dfs: Dfs, layout: CellLayout) -> Self {
        Self::with_store(
            SnapshotStore::new_cas(dfs, cas::CasConfig::default()),
            layout,
        )
    }

    fn with_store(store: SnapshotStore, layout: CellLayout) -> Self {
        Self {
            store,
            layout,
            index: TemporalIndex::new(HighlightConfig::default()),
            policy: DecayPolicy::never(),
            decay_log: DecayReport::default(),
            version: 0,
            observers: Vec::new(),
        }
    }

    pub fn in_memory(layout: CellLayout) -> Self {
        Self::new(Dfs::in_memory(), layout)
    }

    /// Install a decay policy; a pass runs automatically after every
    /// ingested snapshot ("a continuous decaying process ... purged from
    /// replicated storage in a sliding window manner").
    pub fn with_decay(mut self, policy: DecayPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_highlight_config(mut self, config: HighlightConfig) -> Self {
        assert_eq!(
            self.index.last_epoch(),
            None,
            "highlight config must be set before ingestion"
        );
        self.index = TemporalIndex::new(config);
        self
    }

    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    pub fn index(&self) -> &TemporalIndex {
        &self.index
    }

    /// Cumulative effects of all decay passes so far.
    pub fn decay_log(&self) -> DecayReport {
        self.decay_log
    }

    /// Register a mutation observer (e.g. the serving tier's shared
    /// epoch cache). Hooks fire synchronously inside every mutation.
    pub fn add_observer(&mut self, observer: Arc<dyn StoreObserver>) {
        self.observers.push(observer);
    }

    fn bump_version(&mut self) {
        self.version += 1;
    }

    fn notify_ingested(&self, epoch: EpochId) {
        for o in &self.observers {
            o.snapshot_ingested(epoch);
        }
    }

    fn notify_evicted(&self, epochs: &[EpochId]) {
        if epochs.is_empty() {
            return;
        }
        for o in &self.observers {
            o.epochs_evicted(epochs);
        }
    }

    /// Fallible ingest: the storage write can fail under injected faults
    /// (retries exhausted, no live datanodes). On error nothing is
    /// indexed and no partial leaf is visible — the caller may simply
    /// retry the same snapshot. The infallible trait method
    /// [`ExplorationFramework::ingest`] delegates here and panics on
    /// error, which is fine for fault-free benchmarks.
    pub fn try_ingest(&mut self, snapshot: &Snapshot) -> Result<IngestStats, StorageError> {
        // The ingest span is also the reported-seconds clock: stage spans
        // (segment/compress/dfs.write from the storage layer, incremence
        // with nested highlights, decay) nest under it, so the flame
        // table's per-stage self-times add up to the figure-7 numbers.
        let span = obs::span("spate.ingest");
        // Storage layer: compress + persist (staged + atomic commit).
        let stored = self.store.store(snapshot)?;
        // Indexing layer: incremence + highlights.
        {
            let _s = obs::span("incremence");
            self.index.incremence(snapshot, &stored);
        }
        self.bump_version();
        self.notify_ingested(snapshot.epoch);
        // Decaying: continuous sliding-window eviction.
        if self.policy != DecayPolicy::never() {
            self.run_decay(snapshot.epoch);
        }
        let seconds = span.finish_secs();
        Ok(IngestStats {
            epoch: snapshot.epoch,
            seconds,
            raw_bytes: stored.raw_bytes,
            stored_bytes: stored.stored_bytes,
        })
    }

    /// Run a decay pass explicitly at a given "now".
    pub fn run_decay(&mut self, now: EpochId) -> DecayReport {
        let (report, evicted) = decay_with_fungus_traced(
            &mut self.index,
            now,
            &self.policy,
            Fungus::EvictOldestIndividuals,
            &self.store,
        )
        .expect("decay eviction failed");
        self.decay_log.merge(&report);
        if report.did_anything() {
            self.bump_version();
        }
        self.notify_evicted(&evicted);
        report
    }

    /// DFS path of the persisted index image.
    const INDEX_PATH: &'static str = "/spate/_index.img";

    /// Persist the temporal index (compressed) to the filesystem so the
    /// warehouse survives restarts. Returns the stored image size.
    pub fn persist_index(&self) -> Result<u64, crate::storage::StorageError> {
        let image = persist::to_bytes(&self.index);
        let packed = GzipLite::default().compress(&image);
        let dfs = self.store.dfs();
        if dfs.exists(Self::INDEX_PATH) {
            dfs.delete(Self::INDEX_PATH)?;
        }
        dfs.write(Self::INDEX_PATH, &packed)?;
        Ok(packed.len() as u64)
    }

    /// Rebuild a framework from a filesystem holding both the persisted
    /// index image and the (not yet decayed) snapshot files. Runs the
    /// recovery scan (see [`Self::recover`]) before returning, so the
    /// restored warehouse is always self-consistent.
    pub fn restore(dfs: Dfs, layout: CellLayout) -> Result<Self, RestoreError> {
        Self::restore_with_recovery(dfs, layout).map(|(fw, _)| fw)
    }

    /// [`Self::restore`] that also returns what the recovery scan did.
    pub fn restore_with_recovery(
        dfs: Dfs,
        layout: CellLayout,
    ) -> Result<(Self, RecoveryReport), RestoreError> {
        let store = SnapshotStore::new(dfs, Arc::new(GzipLite::default())).with_root("/spate");
        Self::restore_over(store, layout)
    }

    /// [`Self::restore_with_recovery`] for a warehouse written by
    /// [`Self::with_cas`]: rebuilds the content-addressed backend's
    /// refcounts from the on-disk manifests before reconciling the index.
    pub fn restore_with_recovery_cas(
        dfs: Dfs,
        layout: CellLayout,
    ) -> Result<(Self, RecoveryReport), RestoreError> {
        Self::restore_over(
            SnapshotStore::new_cas(dfs, cas::CasConfig::default()),
            layout,
        )
    }

    fn restore_over(
        store: SnapshotStore,
        layout: CellLayout,
    ) -> Result<(Self, RecoveryReport), RestoreError> {
        let packed = store
            .dfs()
            .read(Self::INDEX_PATH)
            .map_err(RestoreError::Dfs)?;
        let image = GzipLite::default()
            .decompress(&packed)
            .map_err(RestoreError::Codec)?;
        let index = persist::from_bytes(&image).map_err(RestoreError::Image)?;
        let mut fw = Self {
            store,
            layout,
            index,
            policy: DecayPolicy::never(),
            decay_log: DecayReport::default(),
            version: 0,
            observers: Vec::new(),
        };
        let report = fw.recover();
        if !report.is_clean() {
            // Make the reconciliation durable, otherwise every restart
            // re-discovers (and re-fixes) the same inconsistencies.
            let _ = fw.persist_index();
        }
        Ok((fw, report))
    }

    /// Startup recovery scan: reconcile the persisted index against the
    /// files actually committed on the filesystem.
    ///
    /// 1. **Orphans** — `.tmp` staging files from crashed ingests are
    ///    deleted (their epoch either committed on retry or never will).
    /// 2. **Missing leaves** — index leaves claiming presence whose file
    ///    is gone are marked absent, so queries degrade to summaries or
    ///    partial coverage instead of erroring epoch by epoch.
    /// 3. **Strays** — committed `.snap` files the index doesn't know:
    ///    those *newer* than the index's last epoch are re-indexed in
    ///    epoch order (crash after commit, before index persist); older
    ///    ones are stale (decay evicted the leaf but the delete crashed)
    ///    and are reaped.
    pub fn recover(&mut self) -> RecoveryReport {
        let _span = obs::span("spate.recover");
        let mut report = RecoveryReport::default();
        // Content-addressed backend first: rebuild refcounts and chunk
        // tables from the committed manifests (a fresh process has none)
        // and sweep orphan packs/temps; only then is `contains` truthful.
        if let Some(cas_report) = self.store.recover_backend() {
            report.orphans_deleted += cas_report.orphan_tmp_deleted;
        }
        for tmp in self.store.orphan_tmp_paths() {
            if self.store.dfs().delete(&tmp).is_ok() {
                report.orphans_deleted += 1;
                obs::inc("spate.recover.orphans_deleted");
            }
        }
        let missing: Vec<EpochId> = self
            .index
            .all_leaves()
            .filter(|l| l.present && !self.store.contains(l.epoch))
            .map(|l| l.epoch)
            .collect();
        let mut newly_absent: Vec<EpochId> = Vec::new();
        for epoch in missing {
            self.index.mark_absent(epoch);
            report.leaves_marked_absent += 1;
            newly_absent.push(epoch);
            obs::inc("spate.recover.leaves_marked_absent");
        }
        let known: HashSet<u32> = self.index.all_leaves().map(|l| l.epoch.0).collect();
        let suffix = self.store.leaf_suffix();
        let mut strays: Vec<(EpochId, String)> = self
            .store
            .committed_paths()
            .into_iter()
            .filter_map(|p| parse_leaf_epoch(&p, suffix).map(|e| (e, p)))
            .filter(|(e, _)| !known.contains(&e.0))
            .collect();
        strays.sort();
        for (epoch, path) in strays {
            if self.index.last_epoch().is_none_or(|last| epoch > last) {
                match self.store.load(epoch) {
                    Ok(snap) => {
                        let stored = StoredSnapshot {
                            epoch,
                            path: path.clone(),
                            raw_bytes: snap.to_bytes().len() as u64,
                            stored_bytes: self.store.dfs().file_len(&path).unwrap_or(0),
                        };
                        self.index.incremence(&snap, &stored);
                        report.strays_reindexed += 1;
                        self.notify_ingested(epoch);
                        obs::inc("spate.recover.strays_reindexed");
                    }
                    Err(_) => {
                        // Unreadable right now (lost/corrupt replicas):
                        // leave the file for a later repair + recovery.
                        report.strays_unreadable += 1;
                        obs::inc("spate.recover.strays_unreadable");
                    }
                }
            } else if self.store.evict(epoch).is_ok_and(|freed| freed > 0) {
                // Evict through the store so the content-addressed backend
                // releases refcounts and GCs shared chunks, not just the
                // leaf file.
                report.stale_strays_deleted += 1;
                obs::inc("spate.recover.stale_strays_deleted");
            }
        }
        self.notify_evicted(&newly_absent);
        if !report.is_clean() {
            self.bump_version();
        }
        report
    }

    /// Classify every epoch of an inclusive window by what the warehouse
    /// can serve *right now*: full-resolution leaf readable (served),
    /// evicted by decay (decayed), or stored-but-unreadable / never
    /// ingested (unavailable). Actually attempts each load, so the answer
    /// reflects real replica health, not just metadata.
    pub fn probe_coverage(&self, start: EpochId, end: EpochId) -> Coverage {
        assert!(start <= end);
        let mut cov = Coverage {
            requested: end.0 - start.0 + 1,
            ..Coverage::default()
        };
        let mut by_epoch: std::collections::HashMap<u32, bool> = std::collections::HashMap::new();
        for leaf in self.index.leaves_in(start, end) {
            by_epoch.insert(leaf.epoch.0, leaf.present);
        }
        for e in start.0..=end.0 {
            match by_epoch.get(&e) {
                Some(true) => {
                    if self.store.load(EpochId(e)).is_ok() {
                        cov.served += 1;
                    } else {
                        cov.unavailable += 1;
                    }
                }
                Some(false) => cov.decayed += 1,
                None => cov.unavailable += 1,
            }
        }
        cov
    }
}

/// What the startup recovery scan found and fixed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Orphaned `.tmp` staging files deleted.
    pub orphans_deleted: u64,
    /// Present-claiming index leaves whose file is gone, marked absent.
    pub leaves_marked_absent: u64,
    /// Committed files newer than the index, re-ingested into it.
    pub strays_reindexed: u64,
    /// Stale committed files older than the index's frontier, deleted.
    pub stale_strays_deleted: u64,
    /// Stray files that could not be read (left in place for repair).
    pub strays_unreadable: u64,
}

impl RecoveryReport {
    /// Did recovery find a perfectly consistent warehouse?
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Epoch encoded in a leaf path `<root>/<y>/<m>/<d>/<epoch:010><suffix>`
/// (`.snap` for the path backend, `.mf` for the content-addressed one).
fn parse_leaf_epoch(path: &str, suffix: &str) -> Option<EpochId> {
    let name = path.rsplit('/').next()?;
    let digits = name.strip_suffix(suffix)?;
    digits.parse::<u32>().ok().map(EpochId)
}

/// Errors rebuilding a framework from persisted state.
#[derive(Debug)]
pub enum RestoreError {
    Dfs(dfs::DfsError),
    Codec(codecs::CodecError),
    Image(PersistError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Dfs(e) => write!(f, "reading index image: {e}"),
            RestoreError::Codec(e) => write!(f, "decompressing index image: {e}"),
            RestoreError::Image(e) => write!(f, "decoding index image: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl ExplorationFramework for SpateFramework {
    fn name(&self) -> &'static str {
        "SPATE"
    }

    fn layout(&self) -> &CellLayout {
        &self.layout
    }

    fn ingest(&mut self, snapshot: &Snapshot) -> IngestStats {
        self.try_ingest(snapshot).expect("spate store")
    }

    fn space(&self) -> SpaceReport {
        SpaceReport {
            data_bytes: self.store.stored_bytes(),
            index_bytes: self.index.index_bytes(),
        }
    }

    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot> {
        self.store.load(epoch).ok()
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn query(&self, q: &Query) -> QueryResult {
        let _span = obs::span("spate.query");
        // Workload heat: every query warms the attributes it selects and
        // (below) the epochs it actually reads.
        for attr in &q.attributes {
            self.index.heat().touch_attribute(attr);
        }
        let covering = {
            let _s = obs::span("index_probe");
            let start = std::time::Instant::now();
            let covering = self.index.find_covering(q.window.0, q.window.1);
            obs::cost::add_stage_ns("index_probe", start.elapsed().as_nanos() as u64);
            covering
        };
        match covering {
            Covering::Exact(leaves) => {
                let _s = obs::span("scan");
                // Degraded-coverage contract: epochs whose leaf can't be
                // read right now (lost or corrupt replicas) are dropped
                // from the answer and *accounted*, never silently skipped
                // and never fatal to the rest of the window.
                let requested = leaves.len() as u32;
                let mut snaps: Vec<Snapshot> = Vec::with_capacity(leaves.len());
                let mut unavailable = 0u32;
                for leaf in &leaves {
                    self.index.heat().touch_epoch(leaf.epoch);
                    match self.store.load(leaf.epoch) {
                        Ok(s) => snaps.push(s),
                        Err(_) => unavailable += 1,
                    }
                }
                let result = project_snapshots(&snaps, q, &self.layout);
                if unavailable == 0 {
                    QueryResult::Exact(result)
                } else {
                    obs::inc("spate.query.partial");
                    obs::add("spate.query.unavailable_epochs", u64::from(unavailable));
                    QueryResult::Partial {
                        result,
                        coverage: Coverage {
                            requested,
                            served: requested - unavailable,
                            decayed: 0,
                            unavailable,
                        },
                    }
                }
            }
            Covering::Summary {
                resolution,
                highlights,
            } => {
                let cells: HashSet<u32> = self.layout.cells_in(&q.bbox).into_iter().collect();
                QueryResult::Summary {
                    resolution,
                    highlights: highlights.filter_cells(&cells),
                }
            }
            Covering::Unavailable => QueryResult::Unavailable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use telco_trace::cells::BoundingBox;
    use telco_trace::time::EPOCHS_PER_DAY;
    use telco_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn compresses_telco_snapshots_well() {
        let (layout, snaps) = tiny_trace(8);
        let mut spate = SpateFramework::in_memory(layout.clone());
        let mut raw_total = 0u64;
        let mut stored_total = 0u64;
        for s in &snaps {
            let st = spate.ingest(s);
            raw_total += st.raw_bytes;
            stored_total += st.stored_bytes;
        }
        // Night epochs at unit-test scale are small files, so the ratio is
        // below the ~7-9x seen on realistic snapshot sizes (see the Table I
        // bench); 4x is the conservative floor here.
        let ratio = raw_total as f64 / stored_total as f64;
        assert!(
            ratio > 3.5,
            "telco snapshots should compress well, got {ratio:.2}x"
        );
    }

    #[test]
    fn exact_queries_over_recent_data() {
        let (layout, snaps) = tiny_trace(4);
        let mut spate = SpateFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
        }
        let q =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(1, 2);
        let result = spate.query(&q);
        assert!(result.is_exact());
        let expected: usize = snaps[1..=2].iter().map(|s| s.cdr.len()).sum();
        assert_eq!(result.row_count(), expected);
    }

    #[test]
    fn decayed_windows_answer_with_summaries() {
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = 4;
        let generator = TraceGenerator::new(config);
        let layout = generator.layout().clone();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let mut spate = SpateFramework::in_memory(layout).with_decay(policy);
        for s in generator {
            spate.ingest(&s);
        }
        assert!(spate.decay_log().leaves_evicted > 0);

        // Day 0 decayed: summary at day resolution.
        let q = Query::new(&["upflux"], BoundingBox::everything())
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        match spate.query(&q) {
            QueryResult::Summary {
                resolution,
                highlights,
            } => {
                assert_eq!(resolution.label(), "day");
                assert!(highlights.cdr_records > 0);
            }
            other => panic!("expected summary, got {other:?}"),
        }

        // The most recent day stays exact.
        let last = spate.index().last_epoch().unwrap();
        let q = Query::new(&["upflux"], BoundingBox::everything())
            .with_window(EpochId(last.0 - 5), last);
        assert!(spate.query(&q).is_exact());
    }

    #[test]
    fn space_is_much_smaller_than_raw() {
        // Enough epochs that highlight overhead amortizes against data.
        let (layout, snaps) = tiny_trace(24);
        let mut spate = SpateFramework::in_memory(layout.clone());
        let mut raw = crate::framework::RawFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
            raw.ingest(s);
        }
        let spate_space = spate.space().total();
        let raw_space = raw.space().total();
        // At unit-test scale the per-day highlight overhead is still large
        // relative to one day of data; the full-trace benches show the
        // paper's ~order-of-magnitude gap.
        assert!(
            (spate_space as f64) < raw_space as f64 / 2.0,
            "spate {spate_space} vs raw {raw_space}"
        );
    }

    #[test]
    fn summary_respects_bbox() {
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = 2;
        let generator = TraceGenerator::new(config);
        let layout = generator.layout().clone();
        let policy = DecayPolicy {
            full_resolution_days: 0,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let mut spate = SpateFramework::in_memory(layout.clone()).with_decay(policy);
        for s in generator {
            spate.ingest(&s);
        }
        let q_all = Query::new(&["upflux"], BoundingBox::everything())
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        let q_some = Query::new(&["upflux"], BoundingBox::new(0.0, 0.0, 38_000.0, 38_000.0))
            .with_epoch_range(0, EPOCHS_PER_DAY - 1);
        let (
            QueryResult::Summary {
                highlights: all, ..
            },
            QueryResult::Summary {
                highlights: some, ..
            },
        ) = (spate.query(&q_all), spate.query(&q_some))
        else {
            panic!("expected summaries");
        };
        assert!(some.per_cell.len() < all.per_cell.len());
    }

    #[test]
    fn persist_and_restore_round_trip() {
        let (layout, snaps) = tiny_trace(6);
        let shared_dfs = dfs::Dfs::in_memory();
        let mut spate = SpateFramework::new(shared_dfs.clone(), layout.clone());
        for s in &snaps {
            spate.ingest(s);
        }
        let image_bytes = spate.persist_index().unwrap();
        assert!(image_bytes > 0);

        // "Restart": rebuild from the same filesystem.
        let restored = SpateFramework::restore(shared_dfs, layout).unwrap();
        assert_eq!(restored.index().last_epoch(), spate.index().last_epoch());
        assert_eq!(
            restored.index().root_highlights().cdr_records,
            spate.index().root_highlights().cdr_records
        );
        // Queries work identically after restore.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(1, 4);
        assert_eq!(restored.query(&q).row_count(), spate.query(&q).row_count());
        // Re-persisting overwrites cleanly.
        spate.persist_index().unwrap();
    }

    #[test]
    fn cas_backend_answers_identically_and_decays_to_zero() {
        let (layout, snaps) = tiny_trace(8);
        let mut path_fw = SpateFramework::in_memory(layout.clone());
        let mut cas_fw = SpateFramework::with_cas(dfs::Dfs::in_memory(), layout);
        for s in &snaps {
            path_fw.ingest(s);
            cas_fw.ingest(s);
        }
        // Same query layer, byte-identical reassembled snapshots: results
        // must agree in shape and content.
        let q =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(1, 6);
        assert_eq!(
            format!("{:?}", cas_fw.query(&q)),
            format!("{:?}", path_fw.query(&q))
        );
        let cas = cas_fw.store().cas().expect("cas backend");
        assert!(cas.stats().dedup_hits > 0, "cross-epoch chunk sharing");
        // Full decay through the store surface leaves zero stored bytes
        // and no unreferenced chunk behind.
        for s in &snaps {
            cas_fw.store().evict(s.epoch).unwrap();
        }
        assert_eq!(cas_fw.store().stored_bytes(), 0);
        assert_eq!(cas.unreferenced_chunks(), 0);
    }

    #[test]
    fn cas_backend_persists_and_restores() {
        let (layout, snaps) = tiny_trace(6);
        let fs = dfs::Dfs::in_memory();
        let mut spate = SpateFramework::with_cas(fs.clone(), layout.clone());
        for s in &snaps[..4] {
            spate.ingest(s);
        }
        spate.persist_index().unwrap();
        // Two strays past the persisted frontier, as after a crash.
        for s in &snaps[4..] {
            spate.ingest(s);
        }
        let root_before = spate.store().cas().unwrap().root_hash();
        let (restored, report) = SpateFramework::restore_with_recovery_cas(fs, layout).unwrap();
        assert_eq!(report.strays_reindexed, 2);
        assert_eq!(restored.index().last_epoch(), Some(snaps[5].epoch));
        let cas = restored.store().cas().unwrap();
        assert_eq!(cas.root_hash(), root_before, "merkle root survives restart");
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 5);
        assert!(restored.query(&q).is_exact());
    }

    #[test]
    fn restore_without_image_fails_cleanly() {
        let (layout, _) = tiny_trace(1);
        match SpateFramework::restore(dfs::Dfs::in_memory(), layout) {
            Err(RestoreError::Dfs(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("restore should fail without an image"),
        }
    }

    #[test]
    fn unreadable_epochs_degrade_to_partial_with_coverage() {
        let (layout, snaps) = tiny_trace(6);
        let fs = dfs::Dfs::new(dfs::DfsConfig {
            replication: 2,
            n_datanodes: 4,
            ..dfs::DfsConfig::default()
        });
        let mut spate = SpateFramework::new(fs.clone(), layout);
        for s in &snaps {
            spate.ingest(s);
        }
        // Destroy both replicas of epoch 2's leaf (bit rot on every copy).
        let path = spate.store().path_for(EpochId(2));
        for dn in 0..4 {
            fs.corrupt_replica_for_test(&path, dn);
        }
        fs.drop_caches();
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 5);
        match spate.query(&q) {
            QueryResult::Partial { result, coverage } => {
                assert_eq!(coverage.requested, 6);
                assert_eq!(coverage.served, 5);
                assert_eq!(coverage.unavailable, 1);
                assert_eq!(coverage.decayed, 0);
                assert!(!coverage.is_complete());
                let expected: usize = snaps
                    .iter()
                    .filter(|s| s.epoch != EpochId(2))
                    .map(|s| s.cdr.len())
                    .sum();
                assert_eq!(result.cdr.rows.len(), expected, "other epochs served");
            }
            other => panic!("expected partial, got {other:?}"),
        }
        // A window avoiding the bad epoch stays exact.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(3, 5);
        assert!(spate.query(&q).is_exact());
        // probe_coverage agrees with the query path.
        let cov = spate.probe_coverage(EpochId(0), EpochId(5));
        assert_eq!(cov.served, 5);
        assert_eq!(cov.unavailable, 1);
    }

    #[test]
    fn recovery_scan_reconciles_index_and_store() {
        let (layout, snaps) = tiny_trace(8);
        let fs = dfs::Dfs::in_memory();
        let mut spate = SpateFramework::new(fs.clone(), layout.clone());
        // Ingest 6 epochs, persist the index, then ingest 2 more WITHOUT
        // re-persisting: those files are "strays" after a crash.
        for s in &snaps[..6] {
            spate.ingest(s);
        }
        spate.persist_index().unwrap();
        for s in &snaps[6..] {
            spate.ingest(s);
        }
        // A crashed ingest leaves an orphaned staging file...
        fs.write(&spate.store().tmp_path_for(EpochId(99)), b"torn")
            .unwrap();
        // ...and epoch 1's committed file vanished (all replicas wiped).
        fs.delete(&spate.store().path_for(EpochId(1))).unwrap();

        let (restored, report) = SpateFramework::restore_with_recovery(fs.clone(), layout).unwrap();
        assert_eq!(report.orphans_deleted, 1);
        assert_eq!(report.leaves_marked_absent, 1, "epoch 1 gone");
        assert_eq!(report.strays_reindexed, 2, "epochs 6..8 recovered");
        assert_eq!(report.stale_strays_deleted, 0);
        assert!(!report.is_clean());
        assert_eq!(restored.index().last_epoch(), Some(EpochId(7)));
        assert!(!fs.exists(&restored.store().tmp_path_for(EpochId(99))));
        // Re-indexed strays answer exact queries again.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(6, 7);
        assert!(restored.query(&q).is_exact());
        // The lost epoch shows up in coverage as decayed-class absence
        // (marked absent in the index), not a query error.
        let cov = restored.probe_coverage(EpochId(0), EpochId(7));
        assert_eq!(cov.requested, 8);
        assert_eq!(cov.served, 7);
        assert_eq!(cov.decayed, 1, "marked-absent leaf");
        // A second recovery is a no-op.
        let (_, second) = SpateFramework::restore_with_recovery(fs, layout_of(&restored)).unwrap();
        assert!(second.is_clean(), "{second:?}");
    }

    fn layout_of(fw: &SpateFramework) -> CellLayout {
        fw.layout.clone()
    }

    #[test]
    fn probe_coverage_counts_decayed_epochs() {
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = 3;
        let generator = TraceGenerator::new(config);
        let layout = generator.layout().clone();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let mut spate = SpateFramework::in_memory(layout).with_decay(policy);
        for s in generator {
            spate.ingest(&s);
        }
        let last = spate.index().last_epoch().unwrap();
        let cov = spate.probe_coverage(EpochId(0), last);
        assert_eq!(cov.requested, last.0 + 1);
        assert!(cov.decayed > 0, "{cov:?}");
        assert!(cov.served > 0, "{cov:?}");
        assert_eq!(cov.unavailable, 0);
        assert_eq!(cov.served + cov.decayed, cov.requested);
    }

    #[test]
    fn unavailable_for_future_windows() {
        let (layout, snaps) = tiny_trace(2);
        let mut spate = SpateFramework::in_memory(layout);
        for s in &snaps {
            spate.ingest(s);
        }
        // A window inside a period that has an index node (January 2016)
        // answers with that node's summary — the paper's "node whose
        // period completely covers w" semantics.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(500, 600);
        assert!(matches!(spate.query(&q), QueryResult::Summary { .. }));
        // A window wholly outside any node's period is unavailable.
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(20_000, 20_100);
        assert!(matches!(spate.query(&q), QueryResult::Unavailable));
    }
}
