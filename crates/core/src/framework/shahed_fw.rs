//! The SHAHED baseline framework: raw storage + the isolated
//! spatio-temporal aggregate index.

use crate::framework::{ExplorationFramework, IngestStats, SpaceReport};
use crate::query::{project_snapshots, Query, QueryResult};
use crate::storage::SnapshotStore;
use codecs::Identity;
use dfs::Dfs;
use shahed::{AggStats, Point, ShahedIndex};
use std::collections::BTreeSet;
use std::sync::Arc;
use telco_trace::cells::{BoundingBox, CellLayout};
use telco_trace::schema::cdr;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Measures tracked by the aggregate index, in order.
pub const SHAHED_MEASURES: [&str; 4] = ["records", "drops", "upflux", "downflux"];

/// Raw snapshot files plus SHAHED's aggregate quad-tree hierarchy: fast
/// spatio-temporal aggregates, full storage cost, no decay.
pub struct ShahedFramework {
    store: SnapshotStore,
    layout: CellLayout,
    index: ShahedIndex,
    ingested: BTreeSet<u32>,
    version: u64,
}

impl ShahedFramework {
    pub fn new(dfs: Dfs, layout: CellLayout) -> Self {
        let index = ShahedIndex::new(BoundingBox::everything(), SHAHED_MEASURES.len());
        Self {
            store: SnapshotStore::new(dfs, Arc::new(Identity)).with_root("/shahed"),
            layout,
            index,
            ingested: BTreeSet::new(),
            version: 0,
        }
    }

    pub fn in_memory(layout: CellLayout) -> Self {
        Self::new(Dfs::in_memory(), layout)
    }

    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// One index point per CDR record, at the record's cell site.
    fn points_of(&self, snapshot: &Snapshot) -> Vec<Point> {
        snapshot
            .cdr
            .iter()
            .filter_map(|r| {
                let cell_id = r.get(cdr::CELL_ID).as_i64()?;
                if cell_id < 0 || cell_id as usize >= self.layout.len() {
                    return None;
                }
                let cell = self.layout.get(cell_id as u32);
                let drop = f64::from(r.get(cdr::CALL_RESULT).as_text() == "DROP");
                Some(Point {
                    x: cell.x_m,
                    y: cell.y_m,
                    values: vec![
                        1.0,
                        drop,
                        r.get(cdr::UPFLUX).as_f64().unwrap_or(0.0),
                        r.get(cdr::DOWNFLUX).as_f64().unwrap_or(0.0),
                    ],
                })
            })
            .collect()
    }

    /// Direct access to the aggregate index (for aggregate-query benches).
    pub fn agg_query(&self, bbox: &BoundingBox, start: EpochId, end: EpochId) -> Vec<AggStats> {
        self.index.query_agg(bbox, start, end)
    }

    /// Flush open rollup buffers (call after the last snapshot of a run).
    pub fn finalize(&mut self) {
        self.index.finalize();
    }
}

impl ExplorationFramework for ShahedFramework {
    fn name(&self) -> &'static str {
        "SHAHED"
    }

    fn layout(&self) -> &CellLayout {
        &self.layout
    }

    fn ingest(&mut self, snapshot: &Snapshot) -> IngestStats {
        let span = obs::span("shahed.ingest");
        let stored = self.store.store(snapshot).expect("shahed store");
        let points = {
            let _s = obs::span("index_points");
            self.points_of(snapshot)
        };
        {
            let _s = obs::span("index_insert");
            self.index.insert_epoch(snapshot.epoch, points);
        }
        self.ingested.insert(snapshot.epoch.0);
        self.version += 1;
        let seconds = span.finish_secs();
        IngestStats {
            epoch: snapshot.epoch,
            seconds,
            raw_bytes: stored.raw_bytes,
            stored_bytes: stored.stored_bytes,
        }
    }

    fn space(&self) -> SpaceReport {
        SpaceReport {
            data_bytes: self.store.stored_bytes(),
            index_bytes: self.index.memory_bytes() as u64,
        }
    }

    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot> {
        if !self.ingested.contains(&epoch.0) {
            return None;
        }
        self.store.load(epoch).ok()
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn query(&self, q: &Query) -> QueryResult {
        let snaps = self.scan(q.window.0, q.window.1);
        if snaps.is_empty() {
            return QueryResult::Unavailable;
        }
        QueryResult::Exact(project_snapshots(&snaps, q, &self.layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;

    fn ingested(n: usize) -> (ShahedFramework, Vec<Snapshot>) {
        let (layout, snaps) = tiny_trace(n);
        let mut fw = ShahedFramework::in_memory(layout);
        for s in &snaps {
            fw.ingest(s);
        }
        fw.finalize();
        (fw, snaps)
    }

    #[test]
    fn aggregate_index_counts_cdr_records() {
        let (fw, snaps) = ingested(4);
        let stats = fw.agg_query(&BoundingBox::everything(), EpochId(0), EpochId(3));
        let expected: u64 = snaps.iter().map(|s| s.cdr.len() as u64).sum();
        assert_eq!(stats[0].count, expected);
        assert_eq!(stats[0].sum, expected as f64);
        // Drop measure is a subset of records.
        assert!(stats[1].sum <= stats[0].sum);
        // Flux sums are nonnegative.
        assert!(stats[2].sum >= 0.0 && stats[3].sum >= 0.0);
    }

    #[test]
    fn spatial_aggregates_narrow_with_bbox() {
        let (fw, _) = ingested(6);
        let all = fw.agg_query(&BoundingBox::everything(), EpochId(0), EpochId(5));
        let quadrant = BoundingBox::new(0.0, 0.0, 38_000.0, 38_000.0);
        let some = fw.agg_query(&quadrant, EpochId(0), EpochId(5));
        assert!(some[0].count <= all[0].count);
    }

    #[test]
    fn space_includes_index_overhead() {
        let (fw, _) = ingested(3);
        let space = fw.space();
        assert!(space.data_bytes > 0);
        assert!(space.index_bytes > 0, "the aggregate index occupies space");
        assert_eq!(space.total(), space.data_bytes + space.index_bytes);
    }

    #[test]
    fn exact_query_matches_raw_semantics() {
        let (fw, snaps) = ingested(3);
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 2);
        let result = fw.query(&q);
        assert!(result.is_exact());
        let expected: usize = snaps.iter().map(|s| s.cdr.len()).sum();
        assert_eq!(result.row_count(), expected);
    }
}
