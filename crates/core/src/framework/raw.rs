//! The RAW baseline: plain uncompressed files, no index, no decay.

use crate::framework::{ExplorationFramework, IngestStats, SpaceReport};
use crate::query::{project_snapshots, Query, QueryResult};
use crate::storage::SnapshotStore;
use codecs::Identity;
use dfs::Dfs;
use std::collections::BTreeSet;
use std::sync::Arc;
use telco_trace::cells::CellLayout;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// "The default solution that stores the telco snapshots as data files on
/// the HDFS file system without any compression, indexing or decaying."
pub struct RawFramework {
    store: SnapshotStore,
    layout: CellLayout,
    ingested: BTreeSet<u32>,
    version: u64,
}

impl RawFramework {
    pub fn new(dfs: Dfs, layout: CellLayout) -> Self {
        Self {
            store: SnapshotStore::new(dfs, Arc::new(Identity)).with_root("/raw"),
            layout,
            ingested: BTreeSet::new(),
            version: 0,
        }
    }

    pub fn in_memory(layout: CellLayout) -> Self {
        Self::new(Dfs::in_memory(), layout)
    }

    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }
}

impl ExplorationFramework for RawFramework {
    fn name(&self) -> &'static str {
        "RAW"
    }

    fn layout(&self) -> &CellLayout {
        &self.layout
    }

    fn ingest(&mut self, snapshot: &Snapshot) -> IngestStats {
        let span = obs::span("raw.ingest");
        let stored = self.store.store(snapshot).expect("raw store");
        self.ingested.insert(snapshot.epoch.0);
        self.version += 1;
        let seconds = span.finish_secs();
        IngestStats {
            epoch: snapshot.epoch,
            seconds,
            raw_bytes: stored.raw_bytes,
            stored_bytes: stored.stored_bytes,
        }
    }

    fn space(&self) -> SpaceReport {
        SpaceReport {
            data_bytes: self.store.stored_bytes(),
            index_bytes: 0,
        }
    }

    fn load_epoch(&self, epoch: EpochId) -> Option<Snapshot> {
        if !self.ingested.contains(&epoch.0) {
            return None;
        }
        self.store.load(epoch).ok()
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn query(&self, q: &Query) -> QueryResult {
        // No index: a full scan of the window, then filter + project.
        let snaps = self.scan(q.window.0, q.window.1);
        if snaps.is_empty() {
            return QueryResult::Unavailable;
        }
        QueryResult::Exact(project_snapshots(&snaps, q, &self.layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use telco_trace::cells::BoundingBox;

    #[test]
    fn ingests_and_scans() {
        let (layout, snaps) = tiny_trace(3);
        let mut fw = RawFramework::in_memory(layout);
        for s in &snaps {
            let stats = fw.ingest(s);
            // Identity codec: stored == raw.
            assert_eq!(stats.raw_bytes, stats.stored_bytes);
        }
        let loaded = fw.scan(EpochId(0), EpochId(2));
        assert_eq!(loaded.len(), 3);
        // Schema-on-read: compare canonical wire forms.
        assert_eq!(loaded[1].to_bytes(), snaps[1].to_bytes());
        assert!(fw.load_epoch(EpochId(99)).is_none());
    }

    #[test]
    fn space_equals_raw_bytes() {
        let (layout, snaps) = tiny_trace(2);
        let mut fw = RawFramework::in_memory(layout);
        let mut total = 0;
        for s in &snaps {
            total += fw.ingest(s).raw_bytes;
        }
        let space = fw.space();
        assert_eq!(space.data_bytes, total);
        assert_eq!(space.index_bytes, 0);
        assert_eq!(space.total(), total);
    }

    #[test]
    fn query_is_always_exact_scan() {
        let (layout, snaps) = tiny_trace(4);
        let mut fw = RawFramework::in_memory(layout);
        for s in &snaps {
            fw.ingest(s);
        }
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 3);
        let result = fw.query(&q);
        assert!(result.is_exact());
        let expected: usize = snaps.iter().map(|s| s.cdr.len()).sum();
        assert_eq!(result.row_count(), expected);

        let empty = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(50, 60);
        assert!(matches!(fw.query(&empty), QueryResult::Unavailable));
    }
}
