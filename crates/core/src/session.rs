//! The exploration session cache of the application layer.
//!
//! "SPATE might retrieve records for a larger period than the one
//! requested ... our decision to retrieve a larger period serves as an
//! implicit prefetching mechanism. When users decide to focus on a smaller
//! window within w, it is considered as a data exploration query
//! Q(a,b,w′) with |w′| < |w|, which can be served directly from the cache
//! of the user interface" (§VI-A).
//!
//! An [`ExplorerSession`] wraps a framework and keeps the snapshots of the
//! last explored window. Zooming into a sub-window (the dominant
//! interaction pattern of the map UI) re-projects from the cached
//! snapshots without touching storage; widening or moving the window
//! refills the cache.

use crate::framework::ExplorationFramework;
use crate::query::{project_snapshots, Query, QueryResult};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Cached state: the snapshots of one contiguous window.
struct CachedWindow {
    start: EpochId,
    end: EpochId,
    snapshots: Vec<Snapshot>,
}

/// Session statistics (to observe prefetching working).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered purely from the session cache.
    pub cache_hits: u64,
    /// Queries that had to go to the framework.
    pub cache_misses: u64,
    /// Queries answered as summaries (never cached: already cheap).
    pub summaries: u64,
}

/// An interactive exploration session over one framework.
pub struct ExplorerSession<'a> {
    fw: &'a dyn ExplorationFramework,
    cached: Option<CachedWindow>,
    stats: SessionStats,
}

impl<'a> ExplorerSession<'a> {
    pub fn new(fw: &'a dyn ExplorationFramework) -> Self {
        Self {
            fw,
            cached: None,
            stats: SessionStats::default(),
        }
    }

    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Evaluate a query, serving sub-windows of the cached window locally.
    ///
    /// Cache hits re-project and re-filter from the cached snapshots, so
    /// *any* attribute selection and bounding box works against them — the
    /// cache key is only the temporal window.
    pub fn explore(&mut self, q: &Query) -> QueryResult {
        if let Some(c) = &self.cached {
            if q.window.0 >= c.start && q.window.1 <= c.end {
                self.stats.cache_hits += 1;
                let slice: Vec<Snapshot> = c
                    .snapshots
                    .iter()
                    .filter(|s| s.epoch >= q.window.0 && s.epoch <= q.window.1)
                    .cloned()
                    .collect();
                return QueryResult::Exact(project_snapshots(&slice, q, self.fw.layout()));
            }
        }

        self.stats.cache_misses += 1;
        // Full evaluation; exact answers refill the cache.
        match self.fw.query(q) {
            QueryResult::Exact(result) => {
                // Re-load the window's snapshots for the cache (the
                // framework result is already projected). This is the
                // "retrieve a larger period" prefetch: keep raw snapshots
                // so the next zoom-in needs no storage access.
                let snapshots = self.fw.scan(q.window.0, q.window.1);
                self.cached = Some(CachedWindow {
                    start: q.window.0,
                    end: q.window.1,
                    snapshots,
                });
                QueryResult::Exact(result)
            }
            summary @ QueryResult::Summary { .. } => {
                self.stats.summaries += 1;
                self.stats.cache_misses -= 1;
                summary
            }
            other => other,
        }
    }

    /// Drop the cached window (e.g. after new data arrives).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// The currently cached window, if any.
    pub fn cached_window(&self) -> Option<(EpochId, EpochId)> {
        self.cached.as_ref().map(|c| (c.start, c.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use crate::framework::SpateFramework;
    use telco_trace::cells::BoundingBox;

    fn session_fixture() -> SpateFramework {
        let (layout, snaps) = tiny_trace(8);
        let mut fw = SpateFramework::in_memory(layout);
        for s in &snaps {
            fw.ingest(s);
        }
        fw
    }

    #[test]
    fn zooming_in_hits_the_cache_and_skips_storage() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new(&fw);

        // Broad query: cold, reads storage.
        let broad = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 7);
        let broad_result = session.explore(&broad);
        assert!(broad_result.is_exact());
        assert_eq!(session.stats().cache_misses, 1);
        assert_eq!(session.cached_window(), Some((EpochId(0), EpochId(7))));

        let reads_before = fw.store().dfs().metrics().reads;
        // Zoom into a sub-window: served from the session cache.
        let narrow = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4);
        let narrow_result = session.explore(&narrow);
        assert!(narrow_result.is_exact());
        assert_eq!(session.stats().cache_hits, 1);
        assert_eq!(
            fw.store().dfs().metrics().reads,
            reads_before,
            "zoom-in must not touch storage"
        );
    }

    #[test]
    fn cached_answers_match_direct_answers() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new(&fw);
        let broad =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(0, 7);
        session.explore(&broad);

        // Different attributes AND different bbox on the cached window.
        let focus_box = BoundingBox::new(0.0, 0.0, 40_000.0, 40_000.0);
        let narrow = Query::new(&["duration_s", "call_type"], focus_box).with_epoch_range(1, 5);
        let via_cache = session.explore(&narrow);
        let direct = fw.query(&narrow);
        let (QueryResult::Exact(a), QueryResult::Exact(b)) = (via_cache, direct) else {
            panic!("expected exact results");
        };
        assert_eq!(a.cdr.rows, b.cdr.rows);
        assert_eq!(a.cdr.column_names, b.cdr.column_names);
    }

    #[test]
    fn widening_refills_the_cache() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new(&fw);
        session.explore(&Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4));
        // A wider window misses and replaces the cache.
        session.explore(&Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 6));
        assert_eq!(session.stats().cache_misses, 2);
        assert_eq!(session.cached_window(), Some((EpochId(0), EpochId(6))));
        // Now the original window is a cache hit.
        session.explore(&Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4));
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn invalidate_forces_a_reload() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new(&fw);
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 3);
        session.explore(&q);
        session.invalidate();
        assert_eq!(session.cached_window(), None);
        session.explore(&q);
        assert_eq!(session.stats().cache_misses, 2);
    }
}
