//! The exploration session cache of the application layer.
//!
//! "SPATE might retrieve records for a larger period than the one
//! requested ... our decision to retrieve a larger period serves as an
//! implicit prefetching mechanism. When users decide to focus on a smaller
//! window within w, it is considered as a data exploration query
//! Q(a,b,w′) with |w′| < |w|, which can be served directly from the cache
//! of the user interface" (§VI-A).
//!
//! An [`ExplorerSession`] keeps the snapshots of the last explored window.
//! Zooming into a sub-window (the dominant interaction pattern of the map
//! UI) re-projects from the cached snapshots without touching storage;
//! widening or moving the window refills the cache.
//!
//! The cached window is stamped with the framework's staleness epoch
//! counter ([`ExplorationFramework::version`]). Any warehouse mutation
//! between two `explore` calls — new snapshots ingested, leaves evicted
//! by decay — bumps that counter, and the next containment hit is
//! demoted to a miss instead of serving rows the warehouse no longer
//! holds. This is the same invalidation contract the serving tier's
//! shared epoch cache follows (`spate-serve`), so a single-user session
//! and a thousand-user server never disagree about freshness.

use crate::framework::ExplorationFramework;
use crate::query::{project_snapshots, Query, QueryResult};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Cached state: the snapshots of one contiguous window, stamped with the
/// framework version they were read at.
struct CachedWindow {
    start: EpochId,
    end: EpochId,
    version: u64,
    snapshots: Vec<Snapshot>,
}

/// Session statistics (to observe prefetching and invalidation working).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered purely from the session cache.
    pub cache_hits: u64,
    /// Queries that had to go to the framework.
    pub cache_misses: u64,
    /// Queries answered as summaries (never cached: already cheap).
    pub summaries: u64,
    /// Containment hits demoted to misses because the warehouse mutated
    /// (ingest or decay) since the window was cached.
    pub stale_invalidations: u64,
}

/// An interactive exploration session. The framework is passed to every
/// [`ExplorerSession::explore`] call rather than borrowed for the session
/// lifetime, so ingest and decay can run between queries — exactly the
/// serving-tier situation where one warehouse mutates under many live
/// sessions.
#[derive(Default)]
pub struct ExplorerSession {
    cached: Option<CachedWindow>,
    stats: SessionStats,
}

impl ExplorerSession {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Evaluate a query, serving sub-windows of the cached window locally.
    ///
    /// Cache hits re-project and re-filter from the cached snapshots, so
    /// *any* attribute selection and bounding box works against them — the
    /// cache key is only the temporal window. A hit is honored only if the
    /// framework's version still matches the stamp taken when the window
    /// was cached; otherwise the entry is dropped and the query re-reads.
    pub fn explore(&mut self, fw: &dyn ExplorationFramework, q: &Query) -> QueryResult {
        if let Some(c) = &self.cached {
            if q.window.0 >= c.start && q.window.1 <= c.end {
                if c.version == fw.version() {
                    self.stats.cache_hits += 1;
                    let slice: Vec<Snapshot> = c
                        .snapshots
                        .iter()
                        .filter(|s| s.epoch >= q.window.0 && s.epoch <= q.window.1)
                        .cloned()
                        .collect();
                    return QueryResult::Exact(project_snapshots(&slice, q, fw.layout()));
                }
                // The warehouse changed under the cached window: the rows
                // may be decayed or superseded. Never serve them.
                self.stats.stale_invalidations += 1;
                obs::inc("core.session.stale_invalidations");
                self.cached = None;
            }
        }

        self.stats.cache_misses += 1;
        // Full evaluation; exact answers refill the cache.
        match fw.query(q) {
            QueryResult::Exact(result) => {
                // Stamp the version *before* re-loading, so a mutation
                // racing the refill invalidates rather than lingers.
                let version = fw.version();
                // Re-load the window's snapshots for the cache (the
                // framework result is already projected). This is the
                // "retrieve a larger period" prefetch: keep raw snapshots
                // so the next zoom-in needs no storage access.
                let snapshots = fw.scan(q.window.0, q.window.1);
                self.cached = Some(CachedWindow {
                    start: q.window.0,
                    end: q.window.1,
                    version,
                    snapshots,
                });
                QueryResult::Exact(result)
            }
            summary @ QueryResult::Summary { .. } => {
                self.stats.summaries += 1;
                self.stats.cache_misses -= 1;
                summary
            }
            other => other,
        }
    }

    /// Drop the cached window explicitly.
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// The currently cached window, if any.
    pub fn cached_window(&self) -> Option<(EpochId, EpochId)> {
        self.cached.as_ref().map(|c| (c.start, c.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use crate::framework::SpateFramework;
    use crate::index::decay::DecayPolicy;
    use telco_trace::cells::BoundingBox;

    fn session_fixture() -> SpateFramework {
        let (layout, snaps) = tiny_trace(8);
        let mut fw = SpateFramework::in_memory(layout);
        for s in &snaps {
            fw.ingest(s);
        }
        fw
    }

    #[test]
    fn zooming_in_hits_the_cache_and_skips_storage() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new();

        // Broad query: cold, reads storage.
        let broad = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 7);
        let broad_result = session.explore(&fw, &broad);
        assert!(broad_result.is_exact());
        assert_eq!(session.stats().cache_misses, 1);
        assert_eq!(session.cached_window(), Some((EpochId(0), EpochId(7))));

        let reads_before = fw.store().dfs().metrics().reads;
        // Zoom into a sub-window: served from the session cache.
        let narrow = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4);
        let narrow_result = session.explore(&fw, &narrow);
        assert!(narrow_result.is_exact());
        assert_eq!(session.stats().cache_hits, 1);
        assert_eq!(
            fw.store().dfs().metrics().reads,
            reads_before,
            "zoom-in must not touch storage"
        );
    }

    #[test]
    fn cached_answers_match_direct_answers() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new();
        let broad =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(0, 7);
        session.explore(&fw, &broad);

        // Different attributes AND different bbox on the cached window.
        let focus_box = BoundingBox::new(0.0, 0.0, 40_000.0, 40_000.0);
        let narrow = Query::new(&["duration_s", "call_type"], focus_box).with_epoch_range(1, 5);
        let via_cache = session.explore(&fw, &narrow);
        let direct = fw.query(&narrow);
        let (QueryResult::Exact(a), QueryResult::Exact(b)) = (via_cache, direct) else {
            panic!("expected exact results");
        };
        assert_eq!(a.cdr.rows, b.cdr.rows);
        assert_eq!(a.cdr.column_names, b.cdr.column_names);
    }

    #[test]
    fn widening_refills_the_cache() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new();
        session.explore(
            &fw,
            &Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4),
        );
        // A wider window misses and replaces the cache.
        session.explore(
            &fw,
            &Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 6),
        );
        assert_eq!(session.stats().cache_misses, 2);
        assert_eq!(session.cached_window(), Some((EpochId(0), EpochId(6))));
        // Now the original window is a cache hit.
        session.explore(
            &fw,
            &Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(2, 4),
        );
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn invalidate_forces_a_reload() {
        let fw = session_fixture();
        let mut session = ExplorerSession::new();
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 3);
        session.explore(&fw, &q);
        session.invalidate();
        assert_eq!(session.cached_window(), None);
        session.explore(&fw, &q);
        assert_eq!(session.stats().cache_misses, 2);
    }

    #[test]
    fn decay_between_queries_invalidates_the_cached_window() {
        // Regression: the session used to keep serving full-resolution
        // rows for windows the decay fungus had already evicted.
        let (layout, snaps) = tiny_trace(8);
        let mut fw = SpateFramework::in_memory(layout);
        for s in &snaps {
            fw.ingest(s);
        }
        let mut session = ExplorerSession::new();
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 5);
        assert!(session.explore(&fw, &q).is_exact());
        assert_eq!(session.stats().cache_hits, 0);

        // The warehouse mutates between queries: decay evicts the whole
        // trace's full resolution (policy horizon 0 days, "now" far out).
        fw = fw.with_decay(DecayPolicy {
            full_resolution_days: 0,
            day_highlight_days: 1000,
            month_highlight_days: 1000,
            year_highlight_days: 1000,
        });
        let report = fw.run_decay(EpochId(5 * telco_trace::time::EPOCHS_PER_DAY));
        assert!(report.leaves_evicted > 0);

        // Same sub-window again: containment holds, but the version
        // changed — the stale rows must NOT be served.
        let narrow = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(1, 3);
        match session.explore(&fw, &narrow) {
            QueryResult::Summary { .. } => {}
            other => panic!("stale session cache served {other:?}"),
        }
        assert_eq!(session.stats().cache_hits, 0, "no stale hit");
        assert_eq!(session.stats().stale_invalidations, 1);
        assert_eq!(session.cached_window(), None, "stale entry dropped");
    }

    #[test]
    fn ingest_between_queries_invalidates_too() {
        let (layout, snaps) = tiny_trace(8);
        let mut fw = SpateFramework::in_memory(layout);
        for s in &snaps[..6] {
            fw.ingest(s);
        }
        let mut session = ExplorerSession::new();
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 5);
        assert!(session.explore(&fw, &q).is_exact());

        fw.ingest(&snaps[6]);

        // The old window re-reads (version changed), then caches fresh.
        assert!(session.explore(&fw, &q).is_exact());
        assert_eq!(session.stats().stale_invalidations, 1);
        assert_eq!(session.stats().cache_misses, 2);
        // Stable warehouse again: hits resume.
        assert!(session.explore(&fw, &q).is_exact());
        assert_eq!(session.stats().cache_hits, 1);
    }
}
