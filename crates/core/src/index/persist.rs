//! Binary persistence of the temporal index.
//!
//! The paper's warehouse is long-running: highlights accumulate over
//! months and years and must survive restarts. This module serializes the
//! whole [`TemporalIndex`] — node structure, leaf metadata, highlights —
//! into a compact varint-based binary image; [`crate::SpateFramework`]
//! stores it (compressed) beside the snapshots.

use crate::index::heat::{HeatConfig, HeatEntry, HeatLedger};
use crate::index::highlights::{CellSummary, FreqTable, HighlightConfig, Highlights};
use crate::index::{DayNode, EpochLeaf, MonthNode, TemporalIndex, YearNode};
use codecs::varint;
use codecs::CodecError;
use shahed::AggStats;
use std::fmt;
use telco_trace::time::EpochId;

const MAGIC: &[u8; 4] = b"SPIX";
/// Version 2 appended the heat-ledger section; version-1 images are still
/// readable and restore with an empty ledger.
const VERSION: u8 = 2;

/// Errors restoring a persisted index image.
#[derive(Debug)]
pub enum PersistError {
    BadMagic,
    BadVersion(u8),
    Corrupt(CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an index image"),
            PersistError::BadVersion(v) => write!(f, "unsupported index image version {v}"),
            PersistError::Corrupt(e) => write!(f, "corrupt index image: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Corrupt(e)
    }
}

// ------------------------------------------------------------- writers

fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_agg(out: &mut Vec<u8>, a: &AggStats) {
    varint::write_u64(out, a.count);
    write_f64(out, a.sum);
    write_f64(out, a.min);
    write_f64(out, a.max);
}

fn write_cell_summary(out: &mut Vec<u8>, c: &CellSummary) {
    varint::write_u64(out, c.cdr_records);
    varint::write_u64(out, c.cdr_drops);
    write_agg(out, &c.upflux);
    write_agg(out, &c.downflux);
    write_agg(out, &c.duration_s);
    varint::write_u64(out, c.nms_reports);
    write_agg(out, &c.attempts);
    write_agg(out, &c.drops);
    write_agg(out, &c.throughput);
}

fn write_highlights(out: &mut Vec<u8>, h: &Highlights) {
    varint::write_u64(out, u64::from(h.first_epoch.0));
    varint::write_u64(out, u64::from(h.last_epoch.0));
    varint::write_u64(out, h.cdr_records);
    varint::write_u64(out, h.nms_records);
    // Cells sorted for deterministic images.
    let mut cells: Vec<(&u32, &CellSummary)> = h.per_cell.iter().collect();
    cells.sort_by_key(|(id, _)| **id);
    varint::write_u64(out, cells.len() as u64);
    for (id, summary) in cells {
        varint::write_u64(out, u64::from(*id));
        write_cell_summary(out, summary);
    }
    varint::write_u64(out, h.attr_freqs.len() as u64);
    for table in &h.attr_freqs {
        varint::write_u64(out, table.total);
        let mut entries: Vec<(&String, &u64)> = table.counts.iter().collect();
        entries.sort();
        varint::write_u64(out, entries.len() as u64);
        for (value, count) in entries {
            write_string(out, value);
            varint::write_u64(out, *count);
        }
    }
}

fn write_heat_entry(out: &mut Vec<u8>, e: &HeatEntry) {
    write_f64(out, e.heat);
    varint::write_u64(out, e.last_tick);
    varint::write_u64(out, e.accesses);
    varint::write_u64(out, e.cache_hits);
    varint::write_u64(out, e.cache_misses);
}

fn write_heat(out: &mut Vec<u8>, ledger: &HeatLedger) {
    let (config, tick, epochs, attributes) = ledger.persist_view();
    write_f64(out, config.half_life_epochs);
    write_f64(out, config.hot_threshold);
    write_f64(out, config.warm_threshold);
    varint::write_u64(out, tick);
    // Both lists come out of BTreeMaps, so they are already sorted and the
    // image stays deterministic.
    varint::write_u64(out, epochs.len() as u64);
    for (epoch, entry) in &epochs {
        varint::write_u64(out, u64::from(*epoch));
        write_heat_entry(out, entry);
    }
    varint::write_u64(out, attributes.len() as u64);
    for (name, entry) in &attributes {
        write_string(out, name);
        write_heat_entry(out, entry);
    }
}

fn write_leaf(out: &mut Vec<u8>, l: &EpochLeaf) {
    varint::write_u64(out, u64::from(l.epoch.0));
    write_string(out, &l.path);
    varint::write_u64(out, l.raw_bytes);
    varint::write_u64(out, l.stored_bytes);
    out.push(u8::from(l.present));
}

/// Serialize the whole index.
pub fn to_bytes(index: &TemporalIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 << 10);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    // Config.
    let config = &index.config;
    varint::write_u64(&mut out, config.categorical_attrs.len() as u64);
    for &a in &config.categorical_attrs {
        varint::write_u64(&mut out, a as u64);
    }
    write_f64(&mut out, config.theta_day);
    write_f64(&mut out, config.theta_month);
    write_f64(&mut out, config.theta_year);

    // Last epoch.
    match index.last_epoch {
        Some(e) => {
            out.push(1);
            varint::write_u64(&mut out, u64::from(e.0));
        }
        None => out.push(0),
    }

    write_highlights(&mut out, &index.root_highlights);

    varint::write_u64(&mut out, index.years.len() as u64);
    for y in &index.years {
        varint::write_u64(&mut out, u64::from(y.year));
        out.push(u8::from(y.decayed));
        write_highlights(&mut out, &y.highlights);
        varint::write_u64(&mut out, y.months.len() as u64);
        for m in &y.months {
            varint::write_u64(&mut out, u64::from(m.month));
            out.push(u8::from(m.decayed));
            write_highlights(&mut out, &m.highlights);
            varint::write_u64(&mut out, m.days.len() as u64);
            for d in &m.days {
                varint::write_u64(&mut out, u64::from(d.day_index));
                out.push(u8::from(d.decayed));
                write_highlights(&mut out, &d.highlights);
                varint::write_u64(&mut out, d.leaves.len() as u64);
                for l in &d.leaves {
                    write_leaf(&mut out, l);
                }
            }
        }
    }

    // v2: heat-ledger section, appended after the structural tree.
    write_heat(&mut out, &index.heat);
    out
}

// ------------------------------------------------------------- readers

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(varint::read_u64(self.input, &mut self.pos)?)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(varint::read_u32(self.input, &mut self.pos)?)
    }

    fn byte(&mut self) -> Result<u8, PersistError> {
        let b = *self
            .input
            .get(self.pos)
            .ok_or(PersistError::Corrupt(CodecError::Truncated))?;
        self.pos += 1;
        Ok(b)
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        if self.pos + 8 > self.input.len() {
            return Err(PersistError::Corrupt(CodecError::Truncated));
        }
        let v = f64::from_le_bytes(self.input[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u64()? as usize;
        if len > 1 << 20 || self.pos + len > self.input.len() {
            return Err(PersistError::Corrupt(CodecError::Truncated));
        }
        let s = std::str::from_utf8(&self.input[self.pos..self.pos + len])
            .map_err(|_| PersistError::Corrupt(CodecError::Corrupt("bad utf-8 in image")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    fn agg(&mut self) -> Result<AggStats, PersistError> {
        Ok(AggStats {
            count: self.u64()?,
            sum: self.f64()?,
            min: self.f64()?,
            max: self.f64()?,
        })
    }

    fn cell_summary(&mut self) -> Result<CellSummary, PersistError> {
        Ok(CellSummary {
            cdr_records: self.u64()?,
            cdr_drops: self.u64()?,
            upflux: self.agg()?,
            downflux: self.agg()?,
            duration_s: self.agg()?,
            nms_reports: self.u64()?,
            attempts: self.agg()?,
            drops: self.agg()?,
            throughput: self.agg()?,
        })
    }

    fn highlights(&mut self) -> Result<Highlights, PersistError> {
        let first_epoch = EpochId(self.u32()?);
        let last_epoch = EpochId(self.u32()?);
        let cdr_records = self.u64()?;
        let nms_records = self.u64()?;
        let n_cells = self.u64()? as usize;
        if n_cells > 1 << 24 {
            return Err(PersistError::Corrupt(CodecError::Corrupt(
                "implausible cell count",
            )));
        }
        let mut per_cell = std::collections::HashMap::with_capacity(n_cells);
        for _ in 0..n_cells {
            let id = self.u32()?;
            per_cell.insert(id, self.cell_summary()?);
        }
        let n_tables = self.u64()? as usize;
        if n_tables > 1 << 16 {
            return Err(PersistError::Corrupt(CodecError::Corrupt(
                "implausible table count",
            )));
        }
        let mut attr_freqs = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let total = self.u64()?;
            let n = self.u64()? as usize;
            if n > 1 << 24 {
                return Err(PersistError::Corrupt(CodecError::Corrupt(
                    "implausible value count",
                )));
            }
            let mut counts = std::collections::HashMap::with_capacity(n);
            for _ in 0..n {
                let value = self.string()?;
                let count = self.u64()?;
                counts.insert(value, count);
            }
            attr_freqs.push(FreqTable { counts, total });
        }
        Ok(Highlights {
            first_epoch,
            last_epoch,
            cdr_records,
            nms_records,
            per_cell,
            attr_freqs,
        })
    }

    fn leaf(&mut self) -> Result<EpochLeaf, PersistError> {
        Ok(EpochLeaf {
            epoch: EpochId(self.u32()?),
            path: self.string()?,
            raw_bytes: self.u64()?,
            stored_bytes: self.u64()?,
            present: self.byte()? != 0,
        })
    }

    fn heat_entry(&mut self) -> Result<HeatEntry, PersistError> {
        Ok(HeatEntry {
            heat: self.f64()?,
            last_tick: self.u64()?,
            accesses: self.u64()?,
            cache_hits: self.u64()?,
            cache_misses: self.u64()?,
        })
    }

    fn heat(&mut self) -> Result<HeatLedger, PersistError> {
        let config = HeatConfig {
            half_life_epochs: self.f64()?,
            hot_threshold: self.f64()?,
            warm_threshold: self.f64()?,
        };
        let tick = self.u64()?;
        let n_epochs = self.u64()? as usize;
        if n_epochs > 1 << 24 {
            return Err(PersistError::Corrupt(CodecError::Corrupt(
                "implausible heat epoch count",
            )));
        }
        let mut epochs = Vec::with_capacity(n_epochs);
        for _ in 0..n_epochs {
            let epoch = self.u32()?;
            epochs.push((epoch, self.heat_entry()?));
        }
        let n_attrs = self.u64()? as usize;
        if n_attrs > 1 << 16 {
            return Err(PersistError::Corrupt(CodecError::Corrupt(
                "implausible heat attribute count",
            )));
        }
        let mut attributes = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let name = self.string()?;
            attributes.push((name, self.heat_entry()?));
        }
        Ok(HeatLedger::from_parts(config, tick, epochs, attributes))
    }
}

/// Restore an index from a serialized image.
pub fn from_bytes(input: &[u8]) -> Result<TemporalIndex, PersistError> {
    if input.len() < 5 || &input[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = input[4];
    if !matches!(version, 1 | 2) {
        return Err(PersistError::BadVersion(version));
    }
    let mut r = Reader { input, pos: 5 };

    let n_attrs = r.u64()? as usize;
    if n_attrs > 1 << 10 {
        return Err(PersistError::Corrupt(CodecError::Corrupt(
            "implausible attr count",
        )));
    }
    let mut categorical_attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        categorical_attrs.push(r.u64()? as usize);
    }
    let config = HighlightConfig {
        categorical_attrs,
        theta_day: r.f64()?,
        theta_month: r.f64()?,
        theta_year: r.f64()?,
    };

    let last_epoch = if r.byte()? != 0 {
        Some(EpochId(r.u32()?))
    } else {
        None
    };
    let root_highlights = r.highlights()?;

    let n_years = r.u64()? as usize;
    if n_years > 1 << 12 {
        return Err(PersistError::Corrupt(CodecError::Corrupt(
            "implausible year count",
        )));
    }
    let mut years = Vec::with_capacity(n_years);
    for _ in 0..n_years {
        let year = r.u32()?;
        let decayed = r.byte()? != 0;
        let highlights = r.highlights()?;
        let n_months = r.u64()? as usize;
        if n_months > 12 {
            return Err(PersistError::Corrupt(CodecError::Corrupt(
                "more than 12 months in a year",
            )));
        }
        let mut months = Vec::with_capacity(n_months);
        for _ in 0..n_months {
            let month = r.u32()?;
            let m_decayed = r.byte()? != 0;
            let m_highlights = r.highlights()?;
            let n_days = r.u64()? as usize;
            if n_days > 31 {
                return Err(PersistError::Corrupt(CodecError::Corrupt(
                    "more than 31 days in a month",
                )));
            }
            let mut days = Vec::with_capacity(n_days);
            for _ in 0..n_days {
                let day_index = r.u32()?;
                let d_decayed = r.byte()? != 0;
                let d_highlights = r.highlights()?;
                let n_leaves = r.u64()? as usize;
                if n_leaves > 48 {
                    return Err(PersistError::Corrupt(CodecError::Corrupt(
                        "more than 48 epochs in a day",
                    )));
                }
                let mut leaves = Vec::with_capacity(n_leaves);
                for _ in 0..n_leaves {
                    leaves.push(r.leaf()?);
                }
                days.push(DayNode {
                    day_index,
                    highlights: d_highlights,
                    leaves,
                    decayed: d_decayed,
                });
            }
            months.push(MonthNode {
                year,
                month,
                highlights: m_highlights,
                days,
                decayed: m_decayed,
            });
        }
        years.push(YearNode {
            year,
            highlights,
            months,
            decayed,
        });
    }
    // v1 images predate the heat ledger: restore with an empty one.
    let heat = if version >= 2 {
        r.heat()?
    } else {
        HeatLedger::default()
    };

    Ok(TemporalIndex {
        config,
        years,
        root_highlights,
        last_epoch,
        heat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SnapshotStore;
    use codecs::GzipLite;
    use dfs::Dfs;
    use std::sync::Arc;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn build_index(n: usize) -> TemporalIndex {
        let store = SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()));
        let mut index = TemporalIndex::new(HighlightConfig::default());
        let mut config = TraceConfig::scaled(1.0 / 1024.0);
        config.days = (n as u32 / 48) + 1;
        for snap in TraceGenerator::new(config).take(n) {
            let stored = store.store(&snap).unwrap();
            index.incremence(&snap, &stored);
        }
        index
    }

    #[test]
    fn round_trip_preserves_everything() {
        let index = build_index(60); // spans two days
        let image = to_bytes(&index);
        let restored = from_bytes(&image).unwrap();

        assert_eq!(restored.last_epoch(), index.last_epoch());
        assert_eq!(
            restored.root_highlights().cdr_records,
            index.root_highlights().cdr_records
        );
        assert_eq!(restored.years().len(), index.years().len());
        let (y0, y1) = (&index.years()[0], &restored.years()[0]);
        assert_eq!(y0.year, y1.year);
        assert_eq!(y0.months.len(), y1.months.len());
        let (m0, m1) = (&y0.months[0], &y1.months[0]);
        assert_eq!(m0.days.len(), m1.days.len());
        assert_eq!(m0.highlights, m1.highlights);
        for (d0, d1) in m0.days.iter().zip(&m1.days) {
            assert_eq!(d0.day_index, d1.day_index);
            assert_eq!(d0.highlights, d1.highlights);
            assert_eq!(d0.leaves.len(), d1.leaves.len());
            for (l0, l1) in d0.leaves.iter().zip(&d1.leaves) {
                assert_eq!(l0.epoch, l1.epoch);
                assert_eq!(l0.path, l1.path);
                assert_eq!(l0.present, l1.present);
            }
        }
        // Covering decisions identical after restore.
        let c0 = format!("{:?}", index.find_covering(EpochId(3), EpochId(9)));
        let c1 = format!("{:?}", restored.find_covering(EpochId(3), EpochId(9)));
        assert_eq!(c0, c1);
    }

    #[test]
    fn serialization_is_deterministic() {
        let index = build_index(20);
        assert_eq!(to_bytes(&index), to_bytes(&index));
        // And stable across an extra round trip.
        let again = to_bytes(&from_bytes(&to_bytes(&index)).unwrap());
        assert_eq!(again, to_bytes(&index));
    }

    #[test]
    fn empty_index_round_trips() {
        let index = TemporalIndex::new(HighlightConfig::default());
        let restored = from_bytes(&to_bytes(&index)).unwrap();
        assert_eq!(restored.last_epoch(), None);
        assert!(restored.years().is_empty());
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        assert!(matches!(from_bytes(b""), Err(PersistError::BadMagic)));
        assert!(matches!(from_bytes(b"NOPE!"), Err(PersistError::BadMagic)));
        let mut image = to_bytes(&build_index(4));
        image[4] = 99;
        assert!(matches!(
            from_bytes(&image),
            Err(PersistError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let image = to_bytes(&build_index(10));
        for cut in [5usize, 20, image.len() / 2, image.len() - 1] {
            assert!(from_bytes(&image[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn heat_ledger_survives_restart_with_identical_bands() {
        let index = build_index(60);
        // A skewed workload: epoch 3 hot, epoch 40 warm, epoch 10 touched
        // long before the current tick so it has cooled.
        for _ in 0..8 {
            index.heat().touch_epoch(EpochId(3));
        }
        index.heat().touch_epoch(EpochId(40));
        index.heat().record_cache(EpochId(3), true);
        index.heat().record_cache(EpochId(40), false);
        index.heat().touch_attribute("drops");
        index.heat().touch_attribute("drops");

        let restored = from_bytes(&to_bytes(&index)).unwrap();
        let (before, after) = (index.heat().report(), restored.heat().report());
        assert_eq!(before, after, "full report identical after restore");
        assert_eq!(before.bands(), after.bands());
        assert_eq!(restored.heat().tick(), index.heat().tick());
        assert_eq!(restored.heat().config(), index.heat().config());
        assert_eq!(after.epochs[0].epoch, EpochId(3));
        assert_eq!(after.attributes[0].0, "drops");
    }

    #[test]
    fn version_1_images_restore_with_empty_ledger() {
        let index = build_index(6);
        index.heat().touch_epoch(EpochId(2));
        let mut image = to_bytes(&index);
        assert_eq!(image[4], 2, "current images are v2");
        // Reconstruct a v1 image: same structural payload with the heat
        // suffix stripped and the version byte rolled back.
        let heat_len = {
            let mut buf = Vec::new();
            super::write_heat(&mut buf, index.heat());
            buf.len()
        };
        image.truncate(image.len() - heat_len);
        image[4] = 1;
        let restored = from_bytes(&image).unwrap();
        assert_eq!(restored.last_epoch(), index.last_epoch());
        assert_eq!(restored.heat().tracked_epochs(), 0, "v1 → empty ledger");
    }

    #[test]
    fn heat_serialization_is_deterministic() {
        let index = build_index(20);
        index.heat().touch_epoch(EpochId(1));
        index.heat().touch_epoch(EpochId(7));
        index.heat().touch_attribute("upflux");
        let a = to_bytes(&index);
        let b = to_bytes(&index);
        assert_eq!(a, b);
        let again = to_bytes(&from_bytes(&a).unwrap());
        assert_eq!(again, a, "stable across a round trip");
    }
}
