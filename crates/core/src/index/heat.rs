//! The heat ledger: persistent per-epoch and per-attribute access
//! accounting with exponential time decay.
//!
//! The paper's decay policy is age-only ("evict oldest individuals");
//! making it workload-aware (ROADMAP item 4) needs a durable record of
//! *where queries actually go*. The ledger lives inside the temporal
//! index, is updated from the query path and the serving tier's epoch
//! cache, and persists/restores with the index image — so the heat
//! picture survives restarts just like the highlights do.
//!
//! # Decay model
//!
//! Time is **logical**: the ledger's clock (`tick`) advances to the id
//! of each newly ingested epoch, never to the wall clock, so a seeded
//! run produces bit-identical heat values. Each access adds `1.0` of
//! heat; between accesses an entry's heat halves every
//! [`HeatConfig::half_life_epochs`] logical epochs:
//!
//! ```text
//! heat(t) = heat(t0) * 2^(-(t - t0) / half_life)
//! ```
//!
//! Decay is applied lazily — an entry stores `(heat, last_tick)` and is
//! folded forward on its next touch or on report generation — so the
//! record path is one map update, no background sweeps.
//!
//! # Bands
//!
//! A report classifies every tracked epoch as **hot** (`heat >=
//! hot_threshold`), **warm** (`>= warm_threshold`) or **cold**. With the
//! defaults (half-life 48 = one day of epochs, thresholds 4.0 / 0.5),
//! an epoch needs sustained re-access to stay hot and a single touch
//! cools from warm to cold after about one logical day.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use telco_trace::time::EpochId;

/// Tuning of the decay model and banding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatConfig {
    /// Logical epochs for heat to halve (default: 48 = one day).
    pub half_life_epochs: f64,
    /// Band boundary: heat at or above this is hot.
    pub hot_threshold: f64,
    /// Band boundary: heat at or above this (and below hot) is warm.
    pub warm_threshold: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        Self {
            half_life_epochs: 48.0,
            hot_threshold: 4.0,
            warm_threshold: 0.5,
        }
    }
}

/// Heat band of one tracked entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Band {
    Hot,
    Warm,
    Cold,
}

impl Band {
    pub fn name(self) -> &'static str {
        match self {
            Band::Hot => "hot",
            Band::Warm => "warm",
            Band::Cold => "cold",
        }
    }
}

/// One ledger entry: decayed heat plus undecayed lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HeatEntry {
    /// Decayed heat as of `last_tick`.
    pub heat: f64,
    /// Logical tick of the last fold (access or explicit decay).
    pub last_tick: u64,
    /// Lifetime access count (never decays).
    pub accesses: u64,
    /// Epoch-cache hits recorded against this entry (epochs only).
    pub cache_hits: u64,
    /// Epoch-cache misses recorded against this entry (epochs only).
    pub cache_misses: u64,
}

impl HeatEntry {
    /// The entry's heat folded forward to `tick` (read-only).
    fn heat_at(&self, tick: u64, half_life: f64) -> f64 {
        let dt = tick.saturating_sub(self.last_tick);
        if dt == 0 {
            return self.heat;
        }
        self.heat * (-(dt as f64) / half_life).exp2()
    }

    fn touch(&mut self, tick: u64, half_life: f64) {
        self.heat = self.heat_at(tick.max(self.last_tick), half_life) + 1.0;
        self.last_tick = tick.max(self.last_tick);
        self.accesses += 1;
    }
}

#[derive(Debug, Default)]
struct HeatState {
    tick: u64,
    epochs: BTreeMap<u32, HeatEntry>,
    attributes: BTreeMap<String, HeatEntry>,
}

/// The ledger itself. Interior mutability (one mutex over the maps) so
/// the read-only query path and the serving tier's cache can record
/// accesses through `&self`.
#[derive(Debug)]
pub struct HeatLedger {
    config: HeatConfig,
    state: Mutex<HeatState>,
}

impl Default for HeatLedger {
    fn default() -> Self {
        Self::new(HeatConfig::default())
    }
}

impl HeatLedger {
    pub fn new(config: HeatConfig) -> Self {
        Self {
            config,
            state: Mutex::new(HeatState::default()),
        }
    }

    pub fn config(&self) -> HeatConfig {
        self.config
    }

    /// Advance the logical clock to `tick` (monotone; lower ticks are
    /// ignored). Called on ingest with the new epoch's id.
    pub fn advance_to(&self, tick: u64) {
        let mut st = self.state.lock();
        st.tick = st.tick.max(tick);
    }

    /// The current logical tick.
    pub fn tick(&self) -> u64 {
        self.state.lock().tick
    }

    /// Record one access to `epoch`'s data at the current tick.
    pub fn touch_epoch(&self, epoch: EpochId) {
        let mut st = self.state.lock();
        let (tick, half_life) = (st.tick, self.config.half_life_epochs);
        st.epochs.entry(epoch.0).or_default().touch(tick, half_life);
    }

    /// Record one access to attribute `attr` at the current tick.
    pub fn touch_attribute(&self, attr: &str) {
        let mut st = self.state.lock();
        let (tick, half_life) = (st.tick, self.config.half_life_epochs);
        st.attributes
            .entry(attr.to_string())
            .or_default()
            .touch(tick, half_life);
    }

    /// Record an epoch-cache hit or miss against `epoch`. This *is* an
    /// access (it adds heat) — the serving tier routes per-epoch cache
    /// accounting here so the ledger is the single source of epoch heat.
    pub fn record_cache(&self, epoch: EpochId, hit: bool) {
        let mut st = self.state.lock();
        let (tick, half_life) = (st.tick, self.config.half_life_epochs);
        let e = st.epochs.entry(epoch.0).or_default();
        e.touch(tick, half_life);
        if hit {
            e.cache_hits += 1;
        } else {
            e.cache_misses += 1;
        }
    }

    /// Number of distinct epochs ever touched.
    pub fn tracked_epochs(&self) -> usize {
        self.state.lock().epochs.len()
    }

    /// Classify a heat value.
    pub fn band_of(&self, heat: f64) -> Band {
        if heat >= self.config.hot_threshold {
            Band::Hot
        } else if heat >= self.config.warm_threshold {
            Band::Warm
        } else {
            Band::Cold
        }
    }

    /// A point-in-time heat report: every tracked epoch and attribute
    /// folded forward to the current tick and banded. Entries sort
    /// hottest-first (ties by ascending id/name), so reports from equal
    /// access histories are byte-identical.
    pub fn report(&self) -> HeatReport {
        let st = self.state.lock();
        let half_life = self.config.half_life_epochs;
        let mut epochs: Vec<EpochHeat> = st
            .epochs
            .iter()
            .map(|(&id, e)| EpochHeat {
                epoch: EpochId(id),
                heat: e.heat_at(st.tick, half_life),
                band: self.band_of(e.heat_at(st.tick, half_life)),
                accesses: e.accesses,
                cache_hits: e.cache_hits,
                cache_misses: e.cache_misses,
            })
            .collect();
        epochs.sort_by(|a, b| {
            b.heat
                .partial_cmp(&a.heat)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.epoch.0.cmp(&b.epoch.0))
        });
        let mut attributes: Vec<(String, f64, u64)> = st
            .attributes
            .iter()
            .map(|(name, e)| (name.clone(), e.heat_at(st.tick, half_life), e.accesses))
            .collect();
        attributes.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let (mut hot, mut warm, mut cold) = (0usize, 0usize, 0usize);
        for e in &epochs {
            match e.band {
                Band::Hot => hot += 1,
                Band::Warm => warm += 1,
                Band::Cold => cold += 1,
            }
        }
        HeatReport {
            tick: st.tick,
            hot,
            warm,
            cold,
            epochs,
            attributes,
        }
    }

    /// Push the report's summary into the global obs registry as gauges
    /// (`spate.heat.*`), picked up by the Prometheus/JSON exporters.
    pub fn publish_gauges(&self) {
        let r = self.report();
        obs::gauge_set("spate.heat.tick", r.tick as i64);
        obs::gauge_set("spate.heat.epochs_tracked", r.epochs.len() as i64);
        obs::gauge_set("spate.heat.hot", r.hot as i64);
        obs::gauge_set("spate.heat.warm", r.warm as i64);
        obs::gauge_set("spate.heat.cold", r.cold as i64);
        let hits: u64 = r.epochs.iter().map(|e| e.cache_hits).sum();
        let misses: u64 = r.epochs.iter().map(|e| e.cache_misses).sum();
        obs::gauge_set("spate.heat.cache_hits", hits as i64);
        obs::gauge_set("spate.heat.cache_misses", misses as i64);
    }

    // ------------------------------------------------ persistence view

    /// Everything needed to reconstruct the ledger (for the index image).
    #[allow(clippy::type_complexity)]
    pub(crate) fn persist_view(
        &self,
    ) -> (
        HeatConfig,
        u64,
        Vec<(u32, HeatEntry)>,
        Vec<(String, HeatEntry)>,
    ) {
        let st = self.state.lock();
        (
            self.config,
            st.tick,
            st.epochs.iter().map(|(&k, &v)| (k, v)).collect(),
            st.attributes.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        )
    }

    /// Rebuild a ledger from a persisted view.
    pub(crate) fn from_parts(
        config: HeatConfig,
        tick: u64,
        epochs: Vec<(u32, HeatEntry)>,
        attributes: Vec<(String, HeatEntry)>,
    ) -> Self {
        Self {
            config,
            state: Mutex::new(HeatState {
                tick,
                epochs: epochs.into_iter().collect(),
                attributes: attributes.into_iter().collect(),
            }),
        }
    }
}

/// One epoch's row in a [`HeatReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochHeat {
    pub epoch: EpochId,
    pub heat: f64,
    pub band: Band,
    pub accesses: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// A banded, hottest-first view of the ledger at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatReport {
    pub tick: u64,
    pub hot: usize,
    pub warm: usize,
    pub cold: usize,
    /// Hottest first; ties break toward the older epoch.
    pub epochs: Vec<EpochHeat>,
    /// `(attribute, heat, lifetime accesses)`, hottest first.
    pub attributes: Vec<(String, f64, u64)>,
}

impl HeatReport {
    /// The `k` hottest epochs.
    pub fn top_epochs(&self, k: usize) -> &[EpochHeat] {
        &self.epochs[..k.min(self.epochs.len())]
    }

    /// The band assignment of every tracked epoch, in epoch order —
    /// the restart-invariance check compares exactly this.
    pub fn bands(&self) -> Vec<(EpochId, Band)> {
        let mut v: Vec<(EpochId, Band)> = self.epochs.iter().map(|e| (e.epoch, e.band)).collect();
        v.sort_by_key(|(e, _)| e.0);
        v
    }

    /// The report as a JSON document (self-contained, no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tick\": {},", self.tick);
        let _ = writeln!(
            out,
            "  \"bands\": {{\"hot\": {}, \"warm\": {}, \"cold\": {}}},",
            self.hot, self.warm, self.cold
        );
        out.push_str("  \"epochs\": [");
        for (i, e) in self.epochs.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"epoch\": {}, \"heat\": {:.3}, \"band\": \"{}\", \"accesses\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
                e.epoch.0,
                e.heat,
                e.band.name(),
                e.accesses,
                e.cache_hits,
                e.cache_misses
            );
        }
        out.push_str("\n  ],\n  \"attributes\": [");
        for (i, (name, heat, accesses)) in self.attributes.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let escaped: String = name
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c => vec![c],
                })
                .collect();
            let _ = write!(
                out,
                "{sep}\n    {{\"attribute\": \"{escaped}\", \"heat\": {heat:.3}, \"accesses\": {accesses}}}"
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The report in the Prometheus exposition format (heat per epoch as
    /// a labeled gauge family plus band totals).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP spate_heat_band_total Tracked epochs per heat band."
        );
        let _ = writeln!(out, "# TYPE spate_heat_band_total gauge");
        for (band, n) in [("hot", self.hot), ("warm", self.warm), ("cold", self.cold)] {
            let _ = writeln!(out, "spate_heat_band_total{{band=\"{band}\"}} {n}");
        }
        let _ = writeln!(
            out,
            "# HELP spate_heat_epoch Decayed query heat per epoch at tick {}.",
            self.tick
        );
        let _ = writeln!(out, "# TYPE spate_heat_epoch gauge");
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "spate_heat_epoch{{epoch=\"{}\",band=\"{}\"}} {:.3}",
                e.epoch.0,
                e.band.name(),
                e.heat
            );
        }
        let _ = writeln!(
            out,
            "# HELP spate_heat_attribute Decayed query heat per attribute."
        );
        let _ = writeln!(out, "# TYPE spate_heat_attribute gauge");
        for (name, heat, _) in &self.attributes {
            let escaped: String = name
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c => vec![c],
                })
                .collect();
            let _ = writeln!(
                out,
                "spate_heat_attribute{{attribute=\"{escaped}\"}} {heat:.3}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_accumulate_and_decay_by_half_life() {
        let ledger = HeatLedger::new(HeatConfig {
            half_life_epochs: 10.0,
            ..HeatConfig::default()
        });
        ledger.advance_to(100);
        ledger.touch_epoch(EpochId(5));
        ledger.touch_epoch(EpochId(5));
        let r = ledger.report();
        assert_eq!(r.epochs.len(), 1);
        assert!((r.epochs[0].heat - 2.0).abs() < 1e-9);
        // One half-life later: heat halves.
        ledger.advance_to(110);
        let r = ledger.report();
        assert!(
            (r.epochs[0].heat - 1.0).abs() < 1e-9,
            "{}",
            r.epochs[0].heat
        );
        assert_eq!(r.epochs[0].accesses, 2, "lifetime count never decays");
    }

    #[test]
    fn bands_split_hot_warm_cold() {
        let ledger = HeatLedger::new(HeatConfig::default());
        ledger.advance_to(48);
        for _ in 0..6 {
            ledger.touch_epoch(EpochId(1)); // 6.0 → hot
        }
        ledger.touch_epoch(EpochId(2)); // 1.0 → warm
        ledger.touch_epoch(EpochId(3));
        ledger.advance_to(48 * 4); // 3 half-lives: 1.0 → 0.125 → cold
        ledger.touch_epoch(EpochId(4)); // fresh warm at the new tick
        let r = ledger.report();
        // Epoch 1 decayed 3 half-lives from 6.0 to 0.75 (warm); epoch 2
        // likewise to 0.125 (cold).
        assert_eq!((r.hot, r.warm, r.cold), (0, 2, 2), "{r:?}");
        assert_eq!(r.epochs[0].epoch, EpochId(4), "freshest access is hottest");
        let bands = r.bands();
        assert_eq!(bands[0], (EpochId(1), Band::Warm));
        assert_eq!(bands[1], (EpochId(2), Band::Cold));
        assert_eq!(bands[3], (EpochId(4), Band::Warm));
    }

    #[test]
    fn cache_recording_adds_heat_and_counts() {
        let ledger = HeatLedger::default();
        ledger.advance_to(1);
        ledger.record_cache(EpochId(9), false);
        ledger.record_cache(EpochId(9), true);
        ledger.record_cache(EpochId(9), true);
        let r = ledger.report();
        assert_eq!(r.epochs[0].cache_hits, 2);
        assert_eq!(r.epochs[0].cache_misses, 1);
        assert_eq!(r.epochs[0].accesses, 3);
        assert!((r.epochs[0].heat - 3.0).abs() < 1e-9);
    }

    #[test]
    fn attribute_heat_is_tracked_and_sorted() {
        let ledger = HeatLedger::default();
        ledger.advance_to(1);
        for _ in 0..3 {
            ledger.touch_attribute("upflux");
        }
        ledger.touch_attribute("downflux");
        let r = ledger.report();
        assert_eq!(r.attributes[0].0, "upflux");
        assert!((r.attributes[0].1 - 3.0).abs() < 1e-9);
        assert_eq!(r.attributes[1].0, "downflux");
        assert_eq!(r.attributes[1].2, 1);
    }

    #[test]
    fn persist_view_round_trips_bit_exactly() {
        let ledger = HeatLedger::default();
        ledger.advance_to(7);
        ledger.touch_epoch(EpochId(1));
        ledger.advance_to(29);
        ledger.touch_epoch(EpochId(1));
        ledger.touch_epoch(EpochId(2));
        ledger.touch_attribute("drops");
        ledger.record_cache(EpochId(2), true);
        let (cfg, tick, epochs, attrs) = ledger.persist_view();
        let restored = HeatLedger::from_parts(cfg, tick, epochs, attrs);
        assert_eq!(ledger.report(), restored.report());
        assert_eq!(ledger.report().bands(), restored.report().bands());
    }

    #[test]
    fn clock_is_monotone_and_report_is_deterministic() {
        let ledger = HeatLedger::default();
        ledger.advance_to(50);
        ledger.advance_to(10); // ignored
        assert_eq!(ledger.tick(), 50);
        ledger.touch_epoch(EpochId(3));
        ledger.touch_epoch(EpochId(8));
        let a = ledger.report();
        let b = ledger.report();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // Ties sort by ascending epoch.
        assert_eq!(a.epochs[0].epoch, EpochId(3));
    }

    #[test]
    fn report_exports_are_well_formed() {
        let ledger = HeatLedger::default();
        ledger.advance_to(2);
        ledger.touch_epoch(EpochId(0));
        ledger.touch_attribute("call_drops");
        let r = ledger.report();
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bands\""));
        assert!(json.contains("\"attribute\": \"call_drops\""));
        let prom = r.to_prometheus();
        assert!(prom.contains("spate_heat_band_total{band=\"hot\"}"));
        assert!(prom.contains("spate_heat_epoch{epoch=\"0\""));
        assert_eq!(prom.matches("# TYPE spate_heat_epoch gauge").count(), 1);
    }

    #[test]
    fn top_epochs_clamps_k() {
        let ledger = HeatLedger::default();
        ledger.touch_epoch(EpochId(1));
        let r = ledger.report();
        assert_eq!(r.top_epochs(10).len(), 1);
        assert_eq!(r.top_epochs(0).len(), 0);
    }
}
