//! The Decaying module: the "Evict Oldest Individuals" data fungus.
//!
//! "Decaying refers to the progressive loss of detail in information as
//! data ages with time until it has completely disappeared ... we chose a
//! data fungus we coin 'Evict Oldest Individuals' as it helps us to deal
//! more pragmatically with telco network signals, where more recent
//! signals contain more important operational value that needs to be
//! retained fully" (§V-C).
//!
//! A [`DecayPolicy`] sets the retention horizon of each resolution:
//! full-resolution leaves decay first (their compressed files are purged
//! from replicated storage in a sliding-window manner), then day
//! highlights, then month highlights, then whole year subtrees. The schema
//! never decays — only data does.

use crate::index::TemporalIndex;
use crate::storage::{SnapshotStore, StorageError};
use telco_trace::time::EpochId;

/// Retention horizons, in days of age relative to the newest ingested
/// epoch. Each horizon must not shrink as resolution coarsens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecayPolicy {
    /// Leaves (compressed snapshots) older than this are evicted.
    pub full_resolution_days: u32,
    /// Day highlights older than this are dropped.
    pub day_highlight_days: u32,
    /// Month highlights older than this are dropped.
    pub month_highlight_days: u32,
    /// Year subtrees older than this disappear entirely.
    pub year_highlight_days: u32,
}

impl DecayPolicy {
    /// The paper's hypothetical red-line policy (Fig. 5): "retain up to one
    /// year of data exploration with full resolution along with yearly
    /// progressive decay".
    pub fn paper_default() -> Self {
        Self {
            full_resolution_days: 365,
            day_highlight_days: 2 * 365,
            month_highlight_days: 3 * 365,
            year_highlight_days: 5 * 365,
        }
    }

    /// A policy that never decays anything (control runs).
    pub fn never() -> Self {
        Self {
            full_resolution_days: u32::MAX,
            day_highlight_days: u32::MAX,
            month_highlight_days: u32::MAX,
            year_highlight_days: u32::MAX,
        }
    }

    fn validate(&self) {
        assert!(self.full_resolution_days <= self.day_highlight_days);
        assert!(self.day_highlight_days <= self.month_highlight_days);
        assert!(self.month_highlight_days <= self.year_highlight_days);
    }
}

/// What one decay pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecayReport {
    pub leaves_evicted: usize,
    /// Logical compressed bytes freed from the filesystem.
    pub bytes_freed: u64,
    pub day_highlights_dropped: usize,
    pub month_highlights_dropped: usize,
    pub years_pruned: usize,
}

impl DecayReport {
    pub fn merge(&mut self, other: &DecayReport) {
        self.leaves_evicted += other.leaves_evicted;
        self.bytes_freed += other.bytes_freed;
        self.day_highlights_dropped += other.day_highlights_dropped;
        self.month_highlights_dropped += other.month_highlights_dropped;
        self.years_pruned += other.years_pruned;
    }

    pub fn did_anything(&self) -> bool {
        *self != DecayReport::default()
    }
}

/// The decay fungus: which individuals go first once the full-resolution
/// horizon is reached. Kersten's data-fungus catalog [16] names several;
/// the paper picks "Evict Oldest Individuals" as the pragmatic choice for
/// telco signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fungus {
    /// The paper's fungus: every leaf older than the horizon is evicted,
    /// strictly by age.
    EvictOldestIndividuals,
    /// A traffic-aware variant: past the horizon, *sparse* snapshots (below
    /// their day's mean raw volume — quiet night epochs) decay immediately,
    /// while busy snapshots are retained for `grace_days` longer. Operators
    /// keep full resolution where the operational value concentrates.
    EvictSparseIndividuals { grace_days: u32 },
}

/// Run one decay pass with the paper's fungus ("Evict Oldest Individuals").
pub fn decay(
    index: &mut TemporalIndex,
    now: EpochId,
    policy: &DecayPolicy,
    store: &SnapshotStore,
) -> Result<DecayReport, StorageError> {
    decay_with_fungus(index, now, policy, Fungus::EvictOldestIndividuals, store)
}

/// Run one decay pass: evict everything whose age (relative to `now`)
/// exceeds its resolution's horizon, with leaf selection delegated to the
/// chosen fungus.
pub fn decay_with_fungus(
    index: &mut TemporalIndex,
    now: EpochId,
    policy: &DecayPolicy,
    fungus: Fungus,
    store: &SnapshotStore,
) -> Result<DecayReport, StorageError> {
    decay_with_fungus_traced(index, now, policy, fungus, store).map(|(report, _)| report)
}

/// [`decay_with_fungus`] that also returns exactly which epochs lost
/// their full-resolution leaf. Cache layers (the serving tier's shared
/// decompressed-epoch cache, session caches) subscribe to this list so
/// cached entries are dropped precisely when the tree changes.
pub fn decay_with_fungus_traced(
    index: &mut TemporalIndex,
    now: EpochId,
    policy: &DecayPolicy,
    fungus: Fungus,
    store: &SnapshotStore,
) -> Result<(DecayReport, Vec<EpochId>), StorageError> {
    policy.validate();
    let _span = obs::span("decay.pass");
    let today = now.day_index();
    let mut report = DecayReport::default();
    let mut evicted_epochs: Vec<EpochId> = Vec::new();

    for year in index.years_mut().iter_mut() {
        for month in &mut year.months {
            for day in &mut month.days {
                let age_days = today.saturating_sub(day.day_index);
                if age_days > policy.full_resolution_days {
                    // Which of the day's leaves decay now?
                    let mean_raw = {
                        let present: Vec<u64> = day
                            .leaves
                            .iter()
                            .filter(|l| l.present)
                            .map(|l| l.raw_bytes)
                            .collect();
                        if present.is_empty() {
                            0
                        } else {
                            present.iter().sum::<u64>() / present.len() as u64
                        }
                    };
                    for leaf in &mut day.leaves {
                        if !leaf.present {
                            continue;
                        }
                        let evict = match fungus {
                            Fungus::EvictOldestIndividuals => true,
                            Fungus::EvictSparseIndividuals { grace_days } => {
                                age_days > policy.full_resolution_days + grace_days
                                    || leaf.raw_bytes < mean_raw
                            }
                        };
                        if evict {
                            report.bytes_freed += store.evict(leaf.epoch)?;
                            leaf.present = false;
                            report.leaves_evicted += 1;
                            evicted_epochs.push(leaf.epoch);
                        }
                    }
                }
                if age_days > policy.day_highlight_days && !day.decayed {
                    day.decayed = true;
                    day.highlights.per_cell.clear();
                    day.highlights.per_cell.shrink_to_fit();
                    report.day_highlights_dropped += 1;
                }
            }
            let month_age = month
                .days
                .last()
                .map(|d| today.saturating_sub(d.day_index))
                .unwrap_or(0);
            if month_age > policy.month_highlight_days && !month.decayed {
                month.decayed = true;
                month.highlights.per_cell.clear();
                month.highlights.per_cell.shrink_to_fit();
                report.month_highlights_dropped += 1;
            }
        }
        let year_age = year
            .months
            .last()
            .and_then(|m| m.days.last())
            .map(|d| today.saturating_sub(d.day_index))
            .unwrap_or(0);
        if year_age > policy.year_highlight_days {
            year.decayed = true;
        }
    }

    // Prune fully-decayed years off the tree.
    let before = index.years_mut().len();
    index.years_mut().retain(|y| !y.decayed);
    report.years_pruned = before - index.years_mut().len();

    obs::add("core.decay.leaves_evicted", report.leaves_evicted as u64);
    obs::add("core.decay.bytes_freed", report.bytes_freed);
    obs::add(
        "core.decay.day_highlights_dropped",
        report.day_highlights_dropped as u64,
    );
    obs::add(
        "core.decay.month_highlights_dropped",
        report.month_highlights_dropped as u64,
    );
    obs::add("core.decay.years_pruned", report.years_pruned as u64);
    Ok((report, evicted_epochs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::highlights::HighlightConfig;
    use crate::index::Covering;
    use crate::storage::SnapshotStore;
    use codecs::GzipLite;
    use dfs::Dfs;
    use std::sync::Arc;
    use telco_trace::time::EPOCHS_PER_DAY;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn build(days: u32) -> (TemporalIndex, SnapshotStore) {
        let store = SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()));
        let mut index = TemporalIndex::new(HighlightConfig::default());
        let mut config = TraceConfig::scaled(1.0 / 2048.0);
        config.days = days;
        let generator = TraceGenerator::new(config);
        for snap in generator {
            let stored = store.store(&snap).unwrap();
            index.incremence(&snap, &stored);
        }
        (index, store)
    }

    #[test]
    fn never_policy_is_a_no_op() {
        let (mut index, store) = build(3);
        let now = index.last_epoch().unwrap();
        let report = decay(&mut index, now, &DecayPolicy::never(), &store).unwrap();
        assert!(!report.did_anything());
        assert_eq!(index.present_leaves(), 3 * EPOCHS_PER_DAY as usize);
    }

    #[test]
    fn old_leaves_are_evicted_but_highlights_survive() {
        let (mut index, store) = build(5);
        let now = index.last_epoch().unwrap();
        let policy = DecayPolicy {
            full_resolution_days: 2,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let before_bytes = store.stored_bytes();
        let report = decay(&mut index, now, &policy, &store).unwrap();
        // Days 0 and 1 have age 4 and 3 > 2; days 2,3,4 survive.
        assert_eq!(report.leaves_evicted, 2 * EPOCHS_PER_DAY as usize);
        assert!(report.bytes_freed > 0);
        assert!(store.stored_bytes() < before_bytes);
        assert_eq!(index.present_leaves(), 3 * EPOCHS_PER_DAY as usize);

        // Queries over the decayed range degrade to day summaries.
        match index.find_covering(EpochId(0), EpochId(5)) {
            Covering::Summary { highlights, .. } => assert!(highlights.cdr_records > 0),
            other => panic!("expected summary, got {other:?}"),
        }
        // Recent range stays exact.
        let recent = now.0 - 3;
        assert!(matches!(
            index.find_covering(EpochId(recent), now),
            Covering::Exact(_)
        ));
    }

    #[test]
    fn progressive_decay_drops_day_then_month() {
        let (mut index, store) = build(6);
        let now = index.last_epoch().unwrap();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 3,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let report = decay(&mut index, now, &policy, &store).unwrap();
        assert!(report.leaves_evicted > 0);
        assert_eq!(report.day_highlights_dropped, 2); // days 0,1 (ages 5,4)
        assert_eq!(report.month_highlights_dropped, 0);

        // A decayed day now answers via its month node.
        match index.find_covering(EpochId(0), EpochId(3)) {
            Covering::Summary { resolution, .. } => {
                assert_eq!(resolution.label(), "month");
            }
            other => panic!("expected month summary, got {other:?}"),
        }
    }

    #[test]
    fn ancient_years_vanish_entirely() {
        let (mut index, store) = build(4);
        // Pretend "now" is 10 years after the trace.
        let now = EpochId(3650 * EPOCHS_PER_DAY);
        let policy = DecayPolicy {
            full_resolution_days: 10,
            day_highlight_days: 20,
            month_highlight_days: 30,
            year_highlight_days: 40,
        };
        let report = decay(&mut index, now, &policy, &store).unwrap();
        assert_eq!(report.years_pruned, 1);
        assert!(index.years().is_empty());
        assert!(matches!(
            index.find_covering(EpochId(0), EpochId(10)),
            Covering::Unavailable
        ));
        // All files are gone from storage.
        assert_eq!(store.stored_bytes(), 0);
    }

    #[test]
    fn decay_is_idempotent() {
        let (mut index, store) = build(4);
        let now = index.last_epoch().unwrap();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 2,
            month_highlight_days: 50,
            year_highlight_days: 50,
        };
        let first = decay(&mut index, now, &policy, &store).unwrap();
        assert!(first.did_anything());
        let second = decay(&mut index, now, &policy, &store).unwrap();
        assert!(!second.did_anything(), "{second:?}");
    }

    #[test]
    fn policy_validation_catches_inverted_horizons() {
        let (mut index, store) = build(1);
        let bad = DecayPolicy {
            full_resolution_days: 100,
            day_highlight_days: 10,
            month_highlight_days: 200,
            year_highlight_days: 300,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            decay(&mut index, EpochId(0), &bad, &store)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn sparse_fungus_keeps_busy_snapshots_longer() {
        let (mut index, store) = build(5);
        let now = index.last_epoch().unwrap();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let report = decay_with_fungus(
            &mut index,
            now,
            &policy,
            Fungus::EvictSparseIndividuals { grace_days: 2 },
            &store,
        )
        .unwrap();
        // Days 0..3 are past the horizon (ages 4..2); only day 0 and 1
        // (ages 4, 3 > 1+2) decay fully; days 2 and 3 lose only their
        // sparse (below-mean) epochs.
        assert!(report.leaves_evicted > 0);
        let kept = index.present_leaves();
        assert!(
            kept > EPOCHS_PER_DAY as usize, // the fresh day plus busy survivors
            "busy snapshots should survive the grace band: kept {kept}"
        );
        // Whatever survived in aged days has at least day-mean volume:
        // verified indirectly — a second pass with the strict fungus
        // removes strictly more.
        let report2 = decay(&mut index, now, &policy, &store).unwrap();
        assert!(report2.leaves_evicted > 0, "strict fungus evicts the rest");
    }

    #[test]
    fn traced_decay_names_every_evicted_epoch() {
        let (mut index, store) = build(4);
        let now = index.last_epoch().unwrap();
        let policy = DecayPolicy {
            full_resolution_days: 1,
            day_highlight_days: 100,
            month_highlight_days: 100,
            year_highlight_days: 100,
        };
        let (report, evicted) = decay_with_fungus_traced(
            &mut index,
            now,
            &policy,
            Fungus::EvictOldestIndividuals,
            &store,
        )
        .unwrap();
        assert_eq!(evicted.len(), report.leaves_evicted);
        assert!(!evicted.is_empty());
        for e in &evicted {
            assert!(!store.contains(*e), "evicted epoch {} still stored", e.0);
        }
        // An idempotent second pass evicts nothing new.
        let (_, again) = decay_with_fungus_traced(
            &mut index,
            now,
            &policy,
            Fungus::EvictOldestIndividuals,
            &store,
        )
        .unwrap();
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = DecayReport {
            leaves_evicted: 1,
            bytes_freed: 10,
            day_highlights_dropped: 1,
            month_highlights_dropped: 0,
            years_pruned: 0,
        };
        let b = DecayReport {
            leaves_evicted: 2,
            bytes_freed: 5,
            day_highlights_dropped: 0,
            month_highlights_dropped: 1,
            years_pruned: 1,
        };
        a.merge(&b);
        assert_eq!(a.leaves_evicted, 3);
        assert_eq!(a.bytes_freed, 15);
        assert_eq!(a.years_pruned, 1);
        assert!(a.did_anything());
    }
}
