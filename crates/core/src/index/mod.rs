//! The SPATE indexing layer: a multi-resolution temporal index with
//! incremence, highlights and decaying (paper §V, Fig. 5).
//!
//! "Our index has 4 levels of temporal resolutions (i.e., epoch (30
//! minutes), day, month, year) ... the root node points to year-nodes ...
//! each year node points to 12 month-nodes ... the month nodes point to
//! their corresponding day-nodes, and each day node points to its
//! corresponding 48 snapshot leaves."

pub mod decay;
pub mod heat;
pub mod highlights;
pub mod persist;
pub mod sketch;

use crate::storage::StoredSnapshot;
use heat::HeatLedger;
use highlights::{HighlightConfig, Highlights, Resolution};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// A leaf of the index: one stored (compressed) snapshot.
#[derive(Debug, Clone)]
pub struct EpochLeaf {
    pub epoch: EpochId,
    /// DFS path of the compressed snapshot file.
    pub path: String,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
    /// False once the decay fungus evicted the file.
    pub present: bool,
}

/// A day node: up to 48 leaves plus the day's highlights.
#[derive(Debug)]
pub struct DayNode {
    /// Days since trace start.
    pub day_index: u32,
    pub highlights: Highlights,
    pub leaves: Vec<EpochLeaf>,
    /// True once the day's highlights were decayed away.
    pub decayed: bool,
}

/// A month node.
#[derive(Debug)]
pub struct MonthNode {
    pub year: u32,
    pub month: u32,
    pub highlights: Highlights,
    pub days: Vec<DayNode>,
    pub decayed: bool,
}

/// A year node.
#[derive(Debug)]
pub struct YearNode {
    pub year: u32,
    pub highlights: Highlights,
    pub months: Vec<MonthNode>,
    pub decayed: bool,
}

/// What the index can offer for a query window `w` (paper §VI-A: "the
/// index is accessed to find the temporal node whose period completely
/// covers w").
#[derive(Debug)]
pub enum Covering<'a> {
    /// Every epoch of the window is present at full resolution.
    Exact(Vec<&'a EpochLeaf>),
    /// The lowest single node covering the window, with its resolution.
    Summary {
        resolution: Resolution,
        highlights: &'a Highlights,
    },
    /// The window's data has fully decayed (or never existed).
    Unavailable,
}

/// The multi-resolution temporal index.
#[derive(Debug)]
pub struct TemporalIndex {
    pub(crate) config: HighlightConfig,
    pub(crate) years: Vec<YearNode>,
    /// Root highlights over all completed data ("the root will store the
    /// highlights of all the completed years").
    pub(crate) root_highlights: Highlights,
    pub(crate) last_epoch: Option<EpochId>,
    /// Workload heat ledger: per-epoch/per-attribute access accounting
    /// with time decay, persisted alongside the structural index.
    pub(crate) heat: HeatLedger,
}

impl TemporalIndex {
    pub fn new(config: HighlightConfig) -> Self {
        let n_attrs = config.categorical_attrs.len();
        Self {
            config,
            years: Vec::new(),
            root_highlights: Highlights::empty(EpochId(0), n_attrs),
            last_epoch: None,
            heat: HeatLedger::default(),
        }
    }

    pub fn config(&self) -> &HighlightConfig {
        &self.config
    }

    /// The workload heat ledger (interior mutability: recording an access
    /// needs only `&self`).
    pub fn heat(&self) -> &HeatLedger {
        &self.heat
    }

    pub fn years(&self) -> &[YearNode] {
        &self.years
    }

    pub fn root_highlights(&self) -> &Highlights {
        &self.root_highlights
    }

    pub fn last_epoch(&self) -> Option<EpochId> {
        self.last_epoch
    }

    /// The Incremence module: "Every time a new snapshot arrives, it is
    /// compressed by the storage layer and then the temporal index is
    /// incremented on its right-most path. If the new snapshot belongs to
    /// an incomplete day, it is just added as a leaf under the existing
    /// right-most day-node. Else, we first need to add a new dummy
    /// day-node [... month-node ... year-node]."
    ///
    /// Highlights are accumulated incrementally on the whole right-most
    /// path (leaf summary merged into day, month, year and root), which is
    /// equivalent to the paper's compute-at-period-end formulation but
    /// keeps every node current at all times.
    pub fn incremence(&mut self, snapshot: &Snapshot, stored: &StoredSnapshot) {
        let epoch = snapshot.epoch;
        assert!(
            self.last_epoch.is_none_or(|last| epoch > last),
            "snapshots must arrive in epoch order"
        );
        self.last_epoch = Some(epoch);
        // The heat ledger's logical clock follows ingest, so decayed heat
        // is a pure function of the access/ingest history (never wall
        // clock): same seed, same heat.
        self.heat.advance_to(u64::from(epoch.0));
        let civil = epoch.civil();
        let n_attrs = self.config.categorical_attrs.len();

        // Right-most path maintenance: create dummy year/month/day nodes on
        // rollover.
        if self.years.last().map(|y| y.year) != Some(civil.year) {
            self.years.push(YearNode {
                year: civil.year,
                highlights: Highlights::empty(epoch, n_attrs),
                months: Vec::new(),
                decayed: false,
            });
        }
        let year = self.years.last_mut().unwrap();
        if year.months.last().map(|m| m.month) != Some(civil.month) {
            year.months.push(MonthNode {
                year: civil.year,
                month: civil.month,
                highlights: Highlights::empty(epoch, n_attrs),
                days: Vec::new(),
                decayed: false,
            });
        }
        let month = year.months.last_mut().unwrap();
        if month.days.last().map(|d| d.day_index) != Some(epoch.day_index()) {
            month.days.push(DayNode {
                day_index: epoch.day_index(),
                highlights: Highlights::empty(epoch, n_attrs),
                leaves: Vec::new(),
                decayed: false,
            });
        }
        let day = month.days.last_mut().unwrap();

        // Leaf insertion + highlight rollup along the path.
        {
            let _s = obs::span("highlights");
            let leaf_highlights = Highlights::from_snapshot(snapshot, &self.config);
            day.highlights.merge(&leaf_highlights);
            month.highlights.merge(&leaf_highlights);
            year.highlights.merge(&leaf_highlights);
            self.root_highlights.merge(&leaf_highlights);
        }
        day.leaves.push(EpochLeaf {
            epoch,
            path: stored.path.clone(),
            raw_bytes: stored.raw_bytes,
            stored_bytes: stored.stored_bytes,
            present: true,
        });
    }

    fn each_day(&self) -> impl Iterator<Item = &DayNode> {
        self.years
            .iter()
            .flat_map(|y| y.months.iter())
            .flat_map(|m| m.days.iter())
    }

    /// All leaves intersecting the inclusive window, present or decayed.
    pub fn leaves_in(&self, start: EpochId, end: EpochId) -> Vec<&EpochLeaf> {
        self.each_day()
            .filter(|d| {
                let day_start = d.day_index * telco_trace::time::EPOCHS_PER_DAY;
                let day_end = day_start + telco_trace::time::EPOCHS_PER_DAY - 1;
                day_start <= end.0 && start.0 <= day_end
            })
            .flat_map(|d| d.leaves.iter())
            .filter(|l| l.epoch >= start && l.epoch <= end)
            .collect()
    }

    /// Answer planning for `Q(a, b, w)`: exact if every epoch of `w` is
    /// present, otherwise the lowest single node whose period covers `w`.
    pub fn find_covering(&self, start: EpochId, end: EpochId) -> Covering<'_> {
        assert!(start <= end);
        let leaves = self.leaves_in(start, end);
        let expected = (end.0 - start.0 + 1) as usize;
        if leaves.len() == expected && leaves.iter().all(|l| l.present) {
            return Covering::Exact(leaves);
        }

        // Same day?
        if start.day_index() == end.day_index() {
            if let Some(day) = self.each_day().find(|d| d.day_index == start.day_index()) {
                if !day.decayed {
                    return Covering::Summary {
                        resolution: Resolution::Day,
                        highlights: &day.highlights,
                    };
                }
            }
        }
        // Same month?
        let (cs, ce) = (start.civil(), end.civil());
        if (cs.year, cs.month) == (ce.year, ce.month) {
            if let Some(month) = self
                .years
                .iter()
                .flat_map(|y| y.months.iter())
                .find(|m| (m.year, m.month) == (cs.year, cs.month))
            {
                if !month.decayed {
                    return Covering::Summary {
                        resolution: Resolution::Month,
                        highlights: &month.highlights,
                    };
                }
            }
        }
        // Same year?
        if cs.year == ce.year {
            if let Some(year) = self.years.iter().find(|y| y.year == cs.year) {
                if !year.decayed {
                    return Covering::Summary {
                        resolution: Resolution::Year,
                        highlights: &year.highlights,
                    };
                }
            }
        }
        // Root: any overlap with the retained corpus at all?
        if self
            .last_epoch
            .is_some_and(|last| start <= last && !self.years.is_empty())
        {
            return Covering::Summary {
                resolution: Resolution::Root,
                highlights: &self.root_highlights,
            };
        }
        Covering::Unavailable
    }

    /// Index space `S_i`: approximate bytes of all retained highlights.
    pub fn index_bytes(&self) -> u64 {
        let mut total = self.root_highlights.approx_bytes();
        for y in &self.years {
            if !y.decayed {
                total += y.highlights.approx_bytes();
            }
            for m in &y.months {
                if !m.decayed {
                    total += m.highlights.approx_bytes();
                }
                for d in &m.days {
                    if !d.decayed {
                        total += d.highlights.approx_bytes();
                    }
                    total += d.leaves.len() as u64 * 64;
                }
            }
        }
        total
    }

    /// Count of present (not yet decayed) leaves.
    pub fn present_leaves(&self) -> usize {
        self.each_day()
            .flat_map(|d| d.leaves.iter())
            .filter(|l| l.present)
            .count()
    }

    /// All leaves in epoch order, present or decayed.
    pub fn all_leaves(&self) -> impl Iterator<Item = &EpochLeaf> {
        self.each_day().flat_map(|d| d.leaves.iter())
    }

    /// Mark one leaf absent (its stored file is gone or unreadable —
    /// recovery-scan reconciliation, not decay: highlights stay intact).
    /// Returns whether the leaf existed and was present.
    pub fn mark_absent(&mut self, epoch: EpochId) -> bool {
        for year in &mut self.years {
            for month in &mut year.months {
                for day in &mut month.days {
                    for leaf in &mut day.leaves {
                        if leaf.epoch == epoch {
                            let was = leaf.present;
                            leaf.present = false;
                            return was;
                        }
                    }
                }
            }
        }
        false
    }

    /// Mutable access for the decay module.
    pub(crate) fn years_mut(&mut self) -> &mut Vec<YearNode> {
        &mut self.years
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SnapshotStore;
    use codecs::GzipLite;
    use dfs::Dfs;
    use std::sync::Arc;
    use telco_trace::time::EPOCHS_PER_DAY;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn build_index(n_epochs: usize) -> (TemporalIndex, SnapshotStore) {
        let store = SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()));
        let mut index = TemporalIndex::new(HighlightConfig::default());
        let mut config = TraceConfig::tiny();
        config.days = n_epochs as u32 / EPOCHS_PER_DAY + 1;
        let mut generator = TraceGenerator::new(config);
        for _ in 0..n_epochs {
            let snap = generator.next_snapshot().unwrap();
            let stored = store.store(&snap).unwrap();
            index.incremence(&snap, &stored);
        }
        (index, store)
    }

    #[test]
    fn rightmost_path_structure() {
        let (index, _) = build_index((2 * EPOCHS_PER_DAY + 5) as usize);
        assert_eq!(index.years().len(), 1);
        let year = &index.years()[0];
        assert_eq!(year.year, 2016);
        assert_eq!(year.months.len(), 1);
        let month = &year.months[0];
        assert_eq!(month.days.len(), 3);
        assert_eq!(month.days[0].leaves.len(), EPOCHS_PER_DAY as usize);
        assert_eq!(month.days[1].leaves.len(), EPOCHS_PER_DAY as usize);
        assert_eq!(month.days[2].leaves.len(), 5);
        assert_eq!(index.present_leaves(), (2 * EPOCHS_PER_DAY + 5) as usize);
    }

    #[test]
    fn highlights_roll_up_consistently() {
        let (index, _) = build_index((EPOCHS_PER_DAY + 10) as usize);
        let year = &index.years()[0];
        let month = &year.months[0];
        let day_total: u64 = month.days.iter().map(|d| d.highlights.cdr_records).sum();
        assert_eq!(month.highlights.cdr_records, day_total);
        assert_eq!(year.highlights.cdr_records, day_total);
        assert_eq!(index.root_highlights().cdr_records, day_total);
        assert!(day_total > 0);
    }

    #[test]
    fn exact_covering_when_all_leaves_present() {
        let (index, _) = build_index(10);
        match index.find_covering(EpochId(2), EpochId(7)) {
            Covering::Exact(leaves) => {
                assert_eq!(leaves.len(), 6);
                assert!(leaves.iter().all(|l| l.present));
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn missing_epochs_fall_back_to_summary() {
        let (index, _) = build_index(10);
        // Window extends past ingested data within the same day.
        match index.find_covering(EpochId(5), EpochId(20)) {
            Covering::Summary {
                resolution,
                highlights,
            } => {
                assert_eq!(resolution, Resolution::Day);
                assert!(highlights.cdr_records > 0);
            }
            other => panic!("expected day summary, got {other:?}"),
        }
        // Window spanning multiple days of the same month → month node.
        match index.find_covering(EpochId(5), EpochId(EPOCHS_PER_DAY * 3)) {
            Covering::Summary { resolution, .. } => assert_eq!(resolution, Resolution::Month),
            other => panic!("expected month summary, got {other:?}"),
        }
    }

    #[test]
    fn incremence_rejects_out_of_order() {
        let (mut index, store) = build_index(3);
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap(); // epoch 0 again
        let stored = crate::storage::StoredSnapshot {
            epoch: snap.epoch,
            path: store.path_for(snap.epoch),
            raw_bytes: 1,
            stored_bytes: 1,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            index.incremence(&snap, &stored)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn leaves_in_respects_window() {
        let (index, _) = build_index((EPOCHS_PER_DAY + 6) as usize);
        let leaves = index.leaves_in(EpochId(EPOCHS_PER_DAY - 2), EpochId(EPOCHS_PER_DAY + 2));
        assert_eq!(leaves.len(), 5);
        assert!(leaves.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn index_bytes_accounts_highlights() {
        let (small, _) = build_index(4);
        let (large, _) = build_index((EPOCHS_PER_DAY * 2) as usize);
        assert!(large.index_bytes() > small.index_bytes());
    }

    #[test]
    fn empty_index_is_unavailable() {
        let index = TemporalIndex::new(HighlightConfig::default());
        assert!(matches!(
            index.find_covering(EpochId(0), EpochId(5)),
            Covering::Unavailable
        ));
        assert_eq!(index.present_leaves(), 0);
        assert_eq!(index.last_epoch(), None);
    }
}
