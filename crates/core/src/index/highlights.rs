//! The Highlights module: materialized event summaries per temporal node.
//!
//! "To enable interactive data exploration we compute 'highlights' from the
//! underlying raw data for each internal node of the temporal index ...
//! effectively materialized views to long-standing queries of users (e.g.,
//! the drop-call counters, bandwidth statistics) ... the highlights can be
//! perceived as an OLAP cube whose construction cost is amortized over
//! time" (§V-B).
//!
//! A highlight summary holds (i) per-cell aggregates of the vital network
//! measures and (ii) value-frequency tables for the analyzed categorical
//! attributes. "Frequent values with an occurrence frequency above
//! threshold θ are treated as no-highlights, whereas values with an
//! occurrence frequency below threshold θ are considered highlights" —
//! [`Highlights::events`] applies exactly that rule, with a separate θ per
//! resolution level.

use shahed::AggStats;
use std::collections::HashMap;
use telco_trace::record::Record;
use telco_trace::schema::{cdr, nms, Schema};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Configuration of highlight computation.
#[derive(Debug, Clone)]
pub struct HighlightConfig {
    /// CDR columns analyzed for rare-value (categorical) highlights.
    pub categorical_attrs: Vec<usize>,
    /// Frequency thresholds per resolution: a value is a highlight at a
    /// level when its relative frequency is below the level's θ. "For each
    /// level of resolution a separate frequency threshold θᵢ can be used,
    /// e.g., lower thresholds for higher levels of resolution."
    pub theta_day: f64,
    pub theta_month: f64,
    pub theta_year: f64,
}

impl Default for HighlightConfig {
    fn default() -> Self {
        Self {
            categorical_attrs: vec![cdr::CALL_TYPE, cdr::CALL_RESULT, cdr::TECH, cdr::PLAN_CODE],
            theta_day: 0.02,
            theta_month: 0.01,
            theta_year: 0.005,
        }
    }
}

impl HighlightConfig {
    pub fn theta_for(&self, level: Resolution) -> f64 {
        match level {
            Resolution::Day => self.theta_day,
            Resolution::Month => self.theta_month,
            Resolution::Year | Resolution::Root => self.theta_year,
        }
    }
}

/// Temporal resolution of a summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    Day,
    Month,
    Year,
    Root,
}

impl Resolution {
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Day => "day",
            Resolution::Month => "month",
            Resolution::Year => "year",
            Resolution::Root => "root",
        }
    }
}

/// Per-cell aggregates of the vital network measures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSummary {
    pub cdr_records: u64,
    /// CDR records with `call_result == DROP`.
    pub cdr_drops: u64,
    pub upflux: AggStats,
    pub downflux: AggStats,
    pub duration_s: AggStats,
    pub nms_reports: u64,
    pub attempts: AggStats,
    pub drops: AggStats,
    pub throughput: AggStats,
}

impl CellSummary {
    fn merge(&mut self, other: &CellSummary) {
        self.cdr_records += other.cdr_records;
        self.cdr_drops += other.cdr_drops;
        self.upflux.merge(&other.upflux);
        self.downflux.merge(&other.downflux);
        self.duration_s.merge(&other.duration_s);
        self.nms_reports += other.nms_reports;
        self.attempts.merge(&other.attempts);
        self.drops.merge(&other.drops);
        self.throughput.merge(&other.throughput);
    }

    /// Drop-call rate from the NMS counters of this cell.
    pub fn drop_rate(&self) -> f64 {
        if self.attempts.sum <= 0.0 {
            0.0
        } else {
            self.drops.sum / self.attempts.sum
        }
    }
}

/// Value-frequency table of one categorical attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FreqTable {
    pub counts: HashMap<String, u64>,
    pub total: u64,
}

impl FreqTable {
    /// Count one occurrence of `value`. Public because the table is also
    /// the detector the meta-highlights self-monitor ([`crate::meta`])
    /// feeds system-telemetry categories through.
    pub fn add(&mut self, value: String) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    fn merge(&mut self, other: &FreqTable) {
        for (v, c) in &other.counts {
            *self.counts.entry(v.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Relative frequency of a value.
    pub fn share(&self, value: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts.get(value).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }

    /// The most frequent value (ties broken lexicographically smallest,
    /// for determinism), or `None` on an empty table.
    pub fn modal(&self) -> Option<(&str, u64)> {
        self.counts
            .iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then(vb.cmp(va)))
            .map(|(v, c)| (v.as_str(), *c))
    }

    /// The θ-rarity rule of [`Highlights::events`] applied to this table
    /// alone: `(value, count, share)` for every value whose relative
    /// occurrence frequency is below `theta`, rarest first.
    pub fn rare_values(&self, theta: f64) -> Vec<(String, u64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(String, u64, f64)> = self
            .counts
            .iter()
            .map(|(v, &c)| (v.clone(), c, c as f64 / self.total as f64))
            .filter(|(_, _, share)| *share < theta)
            .collect();
        out.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap().then(a.0.cmp(&b.0)));
        out
    }
}

/// A rare-value highlight reported at some resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct HighlightEvent {
    /// Attribute name (its "type" in the paper's terms).
    pub attribute: String,
    pub value: String,
    pub count: u64,
    /// Relative frequency that put it under θ.
    pub share: f64,
}

/// A numeric highlight: "its peaking point (in case of continuous
/// numerical values) and its duration" — a cell whose measure peaked
/// anomalously versus the rest of the network during the covered period.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericHighlight {
    pub cell_id: u32,
    /// Which measure peaked (e.g. `"drop_rate"`, `"downflux_max"`).
    pub measure: &'static str,
    /// The peaking point.
    pub peak: f64,
    /// How many standard deviations above the across-cells mean.
    pub zscore: f64,
    /// Duration: the covered epoch span (paper: a highlight carries its
    /// duration; node summaries are exact to their period).
    pub first_epoch: EpochId,
    pub last_epoch: EpochId,
}

/// The materialized summary of one temporal node.
#[derive(Debug, Clone, PartialEq)]
pub struct Highlights {
    /// Inclusive epoch span covered.
    pub first_epoch: EpochId,
    pub last_epoch: EpochId,
    pub cdr_records: u64,
    pub nms_records: u64,
    pub per_cell: HashMap<u32, CellSummary>,
    /// Frequency tables parallel to `HighlightConfig::categorical_attrs`.
    pub attr_freqs: Vec<FreqTable>,
}

impl Highlights {
    /// Empty summary anchored at an epoch.
    pub fn empty(epoch: EpochId, n_attrs: usize) -> Self {
        Self {
            first_epoch: epoch,
            last_epoch: epoch,
            cdr_records: 0,
            nms_records: 0,
            per_cell: HashMap::new(),
            attr_freqs: vec![FreqTable::default(); n_attrs],
        }
    }

    /// Compute the summary of one snapshot.
    pub fn from_snapshot(snapshot: &Snapshot, config: &HighlightConfig) -> Self {
        let mut h = Self::empty(snapshot.epoch, config.categorical_attrs.len());
        for r in &snapshot.cdr {
            h.add_cdr(r, config);
        }
        for r in &snapshot.nms {
            h.add_nms(r);
        }
        h
    }

    fn add_cdr(&mut self, r: &Record, config: &HighlightConfig) {
        self.cdr_records += 1;
        let cell_id = r.get(cdr::CELL_ID).as_i64().unwrap_or(-1);
        if cell_id >= 0 {
            let cell = self.per_cell.entry(cell_id as u32).or_default();
            cell.cdr_records += 1;
            if r.get(cdr::CALL_RESULT).as_text() == "DROP" {
                cell.cdr_drops += 1;
            }
            if let Some(v) = r.get(cdr::UPFLUX).as_f64() {
                cell.upflux.add(v);
            }
            if let Some(v) = r.get(cdr::DOWNFLUX).as_f64() {
                cell.downflux.add(v);
            }
            if let Some(v) = r.get(cdr::DURATION_S).as_f64() {
                cell.duration_s.add(v);
            }
        }
        for (i, &col) in config.categorical_attrs.iter().enumerate() {
            let v = r.get(col);
            if !v.is_null() {
                self.attr_freqs[i].add(v.as_text());
            }
        }
    }

    fn add_nms(&mut self, r: &Record) {
        self.nms_records += 1;
        let cell_id = r.get(nms::CELL_ID).as_i64().unwrap_or(-1);
        if cell_id < 0 {
            return;
        }
        let cell = self.per_cell.entry(cell_id as u32).or_default();
        cell.nms_reports += 1;
        if let Some(v) = r.get(nms::CALL_ATTEMPTS).as_f64() {
            cell.attempts.add(v);
        }
        if let Some(v) = r.get(nms::CALL_DROPS).as_f64() {
            cell.drops.add(v);
        }
        if let Some(v) = r.get(nms::THROUGHPUT_KBPS).as_f64() {
            cell.throughput.add(v);
        }
    }

    /// Merge a child summary (day → month → year rollup).
    pub fn merge(&mut self, other: &Highlights) {
        self.first_epoch = self.first_epoch.min(other.first_epoch);
        self.last_epoch = self.last_epoch.max(other.last_epoch);
        self.cdr_records += other.cdr_records;
        self.nms_records += other.nms_records;
        for (cell, summary) in &other.per_cell {
            self.per_cell.entry(*cell).or_default().merge(summary);
        }
        debug_assert_eq!(self.attr_freqs.len(), other.attr_freqs.len());
        for (mine, theirs) in self.attr_freqs.iter_mut().zip(&other.attr_freqs) {
            mine.merge(theirs);
        }
    }

    /// The θ-threshold highlight events at a resolution: values whose
    /// relative occurrence frequency is *below* θ.
    pub fn events(&self, config: &HighlightConfig, level: Resolution) -> Vec<HighlightEvent> {
        let theta = config.theta_for(level);
        let schema = Schema::cdr();
        let mut out = Vec::new();
        for (table, &col) in self.attr_freqs.iter().zip(&config.categorical_attrs) {
            for (value, count, share) in table.rare_values(theta) {
                out.push(HighlightEvent {
                    attribute: schema.column_name(col).to_string(),
                    value,
                    count,
                    share,
                });
            }
        }
        out.sort_by(|a, b| a.share.partial_cmp(&b.share).unwrap());
        out
    }

    /// Numeric peaking-point highlights: cells whose measure sits more
    /// than `z_threshold` standard deviations above the across-cells mean
    /// for this period. Covers the paper's continuous-value highlight kind.
    pub fn numeric_events(&self, z_threshold: f64) -> Vec<NumericHighlight> {
        let mut out = Vec::new();
        // (measure name, extractor over a cell summary)
        type Extractor = fn(&CellSummary) -> Option<f64>;
        let measures: [(&'static str, Extractor); 3] = [
            ("drop_rate", |c| {
                (c.attempts.sum > 0.0).then(|| c.drop_rate())
            }),
            ("downflux_max", |c| {
                (c.downflux.count > 0).then_some(c.downflux.max)
            }),
            ("duration_max", |c| {
                (c.duration_s.count > 0).then_some(c.duration_s.max)
            }),
        ];
        for (name, extract) in measures {
            let values: Vec<(u32, f64)> = self
                .per_cell
                .iter()
                .filter_map(|(id, c)| extract(c).map(|v| (*id, v)))
                .collect();
            if values.len() < 3 {
                continue; // no meaningful population statistics
            }
            let n = values.len() as f64;
            let mean = values.iter().map(|(_, v)| v).sum::<f64>() / n;
            let var = values
                .iter()
                .map(|(_, v)| (v - mean) * (v - mean))
                .sum::<f64>()
                / n;
            let sd = var.sqrt();
            if sd <= 1e-12 {
                continue; // a flat network has no peaks
            }
            for (cell_id, v) in values {
                let z = (v - mean) / sd;
                if z >= z_threshold {
                    out.push(NumericHighlight {
                        cell_id,
                        measure: name,
                        peak: v,
                        zscore: z,
                        first_epoch: self.first_epoch,
                        last_epoch: self.last_epoch,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.zscore.partial_cmp(&a.zscore).unwrap());
        out
    }

    /// Restrict the summary to a set of cells (spatial filtering of a
    /// retrieved highlight node by the query's bounding box).
    pub fn filter_cells(&self, cells: &std::collections::HashSet<u32>) -> Highlights {
        Highlights {
            first_epoch: self.first_epoch,
            last_epoch: self.last_epoch,
            cdr_records: self.cdr_records,
            nms_records: self.nms_records,
            per_cell: self
                .per_cell
                .iter()
                .filter(|(c, _)| cells.contains(c))
                .map(|(c, s)| (*c, s.clone()))
                .collect(),
            attr_freqs: self.attr_freqs.clone(),
        }
    }

    /// Approximate serialized size, for index-space accounting (`S_i`).
    ///
    /// Estimates a compact on-disk encoding (varint counters, delta-coded
    /// aggregates) rather than the in-memory `HashMap` footprint — the
    /// stored form is what the paper's space metric charges.
    pub fn approx_bytes(&self) -> u64 {
        const CELL_SUMMARY_ENCODED: u64 = 64;
        let cell_bytes = self.per_cell.len() as u64 * CELL_SUMMARY_ENCODED;
        let freq_bytes: u64 = self
            .attr_freqs
            .iter()
            .map(|t| t.counts.keys().map(|k| k.len() as u64 + 16).sum::<u64>())
            .sum();
        64 + cell_bytes + freq_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_trace::record::Value;

    fn cdr_record(cell: i64, result: &str, up: i64, down: i64) -> Record {
        let mut values = vec![Value::Null; cdr::WIDTH];
        values[cdr::CELL_ID] = Value::Int(cell);
        values[cdr::CALL_RESULT] = Value::Str(result.to_string());
        values[cdr::CALL_TYPE] = Value::Str("VOICE".to_string());
        values[cdr::TECH] = Value::Str("LTE".to_string());
        values[cdr::PLAN_CODE] = Value::Str("PLAN0".to_string());
        values[cdr::UPFLUX] = Value::Int(up);
        values[cdr::DOWNFLUX] = Value::Int(down);
        values[cdr::DURATION_S] = Value::Int(60);
        Record::new(values)
    }

    fn nms_record(cell: i64, attempts: i64, drops: i64) -> Record {
        let mut values = vec![Value::Null; nms::WIDTH];
        values[nms::CELL_ID] = Value::Int(cell);
        values[nms::CALL_ATTEMPTS] = Value::Int(attempts);
        values[nms::CALL_DROPS] = Value::Int(drops);
        values[nms::THROUGHPUT_KBPS] = Value::Float(1000.0);
        Record::new(values)
    }

    fn snapshot_with(cdr_rows: Vec<Record>, nms_rows: Vec<Record>) -> Snapshot {
        Snapshot::new(EpochId(5), cdr_rows, nms_rows)
    }

    #[test]
    fn summary_aggregates_per_cell() {
        let snap = snapshot_with(
            vec![
                cdr_record(1, "SUCCESS", 100, 1000),
                cdr_record(1, "DROP", 0, 0),
                cdr_record(2, "SUCCESS", 50, 500),
            ],
            vec![nms_record(1, 40, 2), nms_record(2, 10, 0)],
        );
        let config = HighlightConfig::default();
        let h = Highlights::from_snapshot(&snap, &config);
        assert_eq!(h.cdr_records, 3);
        assert_eq!(h.nms_records, 2);
        let c1 = &h.per_cell[&1];
        assert_eq!(c1.cdr_records, 2);
        assert_eq!(c1.cdr_drops, 1);
        assert_eq!(c1.upflux.sum, 100.0);
        assert_eq!(c1.attempts.sum, 40.0);
        assert!((c1.drop_rate() - 0.05).abs() < 1e-12);
        let c2 = &h.per_cell[&2];
        assert_eq!(c2.cdr_drops, 0);
        assert_eq!(c2.downflux.max, 500.0);
    }

    #[test]
    fn merge_rolls_up() {
        let config = HighlightConfig::default();
        let a = Highlights::from_snapshot(
            &snapshot_with(vec![cdr_record(1, "SUCCESS", 10, 20)], vec![]),
            &config,
        );
        let mut b = Highlights::from_snapshot(
            &snapshot_with(
                vec![cdr_record(1, "DROP", 30, 40)],
                vec![nms_record(1, 5, 1)],
            ),
            &config,
        );
        b.merge(&a);
        assert_eq!(b.cdr_records, 2);
        let c1 = &b.per_cell[&1];
        assert_eq!(c1.cdr_records, 2);
        assert_eq!(c1.cdr_drops, 1);
        assert_eq!(c1.upflux.sum, 40.0);
        assert_eq!(c1.upflux.max, 30.0);
        // Frequency tables merged too.
        let result_table = &b.attr_freqs[1]; // CALL_RESULT
        assert_eq!(result_table.counts["SUCCESS"], 1);
        assert_eq!(result_table.counts["DROP"], 1);
        assert_eq!(result_table.total, 2);
    }

    #[test]
    fn rare_values_become_highlights() {
        let config = HighlightConfig::default();
        // 999 SUCCESS + 1 FAIL: FAIL share 0.001 < θ_day 0.02.
        let mut rows: Vec<Record> = (0..999).map(|_| cdr_record(1, "SUCCESS", 1, 1)).collect();
        rows.push(cdr_record(1, "FAIL", 1, 1));
        let h = Highlights::from_snapshot(&snapshot_with(rows, vec![]), &config);
        let events = h.events(&config, Resolution::Day);
        assert!(
            events
                .iter()
                .any(|e| e.attribute == "call_result" && e.value == "FAIL"),
            "{events:?}"
        );
        // SUCCESS is frequent → not a highlight.
        assert!(!events.iter().any(|e| e.value == "SUCCESS"));
        // The same value with share 0.001 is NOT a highlight at θ_year if
        // we tighten θ below it.
        let strict = HighlightConfig {
            theta_year: 0.0005,
            ..config
        };
        let events = h.events(&strict, Resolution::Year);
        assert!(!events.iter().any(|e| e.value == "FAIL"));
    }

    #[test]
    fn theta_per_level_is_respected() {
        let config = HighlightConfig::default();
        assert!(config.theta_for(Resolution::Day) > config.theta_for(Resolution::Month));
        assert!(config.theta_for(Resolution::Month) > config.theta_for(Resolution::Year));
        assert_eq!(
            config.theta_for(Resolution::Root),
            config.theta_for(Resolution::Year)
        );
    }

    #[test]
    fn filter_cells_restricts_spatially() {
        let config = HighlightConfig::default();
        let h = Highlights::from_snapshot(
            &snapshot_with(
                vec![
                    cdr_record(1, "SUCCESS", 1, 1),
                    cdr_record(2, "SUCCESS", 1, 1),
                ],
                vec![],
            ),
            &config,
        );
        let keep: std::collections::HashSet<u32> = [2u32].into_iter().collect();
        let filtered = h.filter_cells(&keep);
        assert!(!filtered.per_cell.contains_key(&1));
        assert!(filtered.per_cell.contains_key(&2));
        // Global counters are preserved (they describe the covered period).
        assert_eq!(filtered.cdr_records, 2);
    }

    #[test]
    fn numeric_peaks_are_flagged() {
        let config = HighlightConfig::default();
        // 20 ordinary cells plus one with a pathological drop rate.
        let mut rows: Vec<Record> = Vec::new();
        let mut nms_rows: Vec<Record> = Vec::new();
        for cell in 0..20i64 {
            nms_rows.push(nms_record(cell, 100, 2)); // 2% drops
        }
        nms_rows.push(nms_record(99, 100, 60)); // 60% drops
        rows.push(cdr_record(1, "SUCCESS", 1, 1));
        let h = Highlights::from_snapshot(&snapshot_with(rows, nms_rows), &config);

        let events = h.numeric_events(3.0);
        let drop_events: Vec<_> = events.iter().filter(|e| e.measure == "drop_rate").collect();
        assert_eq!(drop_events.len(), 1, "{events:?}");
        assert_eq!(drop_events[0].cell_id, 99);
        assert!((drop_events[0].peak - 0.6).abs() < 1e-9);
        assert!(drop_events[0].zscore > 3.0);
        // Duration covers the node's span.
        assert_eq!(drop_events[0].first_epoch, h.first_epoch);
    }

    #[test]
    fn flat_networks_produce_no_numeric_highlights() {
        let config = HighlightConfig::default();
        let nms_rows: Vec<Record> = (0..10).map(|c| nms_record(c, 50, 1)).collect();
        let h = Highlights::from_snapshot(&snapshot_with(vec![], nms_rows), &config);
        assert!(h.numeric_events(3.0).is_empty());
        // Too few cells → no population statistics → no highlights.
        let h2 =
            Highlights::from_snapshot(&snapshot_with(vec![], vec![nms_record(0, 10, 9)]), &config);
        assert!(h2.numeric_events(1.0).is_empty());
    }

    #[test]
    fn span_tracking() {
        let config = HighlightConfig::default();
        let mut a = Highlights::empty(EpochId(10), config.categorical_attrs.len());
        let b = Highlights::empty(EpochId(3), config.categorical_attrs.len());
        a.merge(&b);
        assert_eq!(a.first_epoch, EpochId(3));
        assert_eq!(a.last_epoch, EpochId(10));
    }

    #[test]
    fn approx_bytes_grows_with_cells() {
        let config = HighlightConfig::default();
        let small = Highlights::from_snapshot(
            &snapshot_with(vec![cdr_record(1, "SUCCESS", 1, 1)], vec![]),
            &config,
        );
        let big = Highlights::from_snapshot(
            &snapshot_with(
                (0..100).map(|c| cdr_record(c, "SUCCESS", 1, 1)).collect(),
                vec![],
            ),
            &config,
        );
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
