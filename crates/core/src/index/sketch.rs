//! Space-Saving frequency sketch: bounded-memory θ-classification for
//! high-cardinality attributes.
//!
//! The default highlight attributes (call type/result, technology, plan)
//! have small domains, so exact [`crate::index::highlights::FreqTable`]s
//! suffice. At paper scale an operator may also want θ-highlights over
//! high-cardinality attributes — caller MSISDNs, IMEIs — whose exact
//! tables would grow with the subscriber base. The Space-Saving sketch
//! (Metwally et al.) answers the same question in `O(capacity)` memory:
//!
//! * any value with true relative frequency ≥ 1/capacity is guaranteed to
//!   be tracked (no frequent value is ever missed), and
//! * each tracked count over-estimates truth by at most its recorded
//!   error, so "definitely frequent (no-highlight)" and "possibly rare
//!   (highlight candidate)" are separable with one-sided guarantees.
//!
//! Sketches merge (day → month → year rollups) by the standard pairwise
//! combination, preserving the over-estimate invariant.

use std::collections::HashMap;

/// One tracked counter: estimated count plus the maximum over-estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    /// Upper bound on the value's true count.
    pub count: u64,
    /// Over-estimation bound: `count - error ≤ true ≤ count`.
    pub error: u64,
}

/// The Space-Saving sketch.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: HashMap<String, Counter>,
    /// Total observations (exact).
    total: u64,
}

impl SpaceSaving {
    /// `capacity` counters ≈ guarantees for values with share ≥ 1/capacity.
    /// For a θ-threshold, use `capacity ≥ ceil(1/θ)`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Capacity sized for a frequency threshold θ (with 2x slack).
    pub fn for_theta(theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0);
        Self::new(((2.0 / theta).ceil() as usize).max(8))
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Observe one occurrence of `value`.
    pub fn add(&mut self, value: &str) {
        self.add_count(value, 1);
    }

    /// Observe `n` occurrences of `value`.
    pub fn add_count(&mut self, value: &str, n: u64) {
        self.total += n;
        if let Some(c) = self.counters.get_mut(value) {
            c.count += n;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters
                .insert(value.to_string(), Counter { count: n, error: 0 });
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // error bound (the classic Space-Saving replacement).
        let (victim, min) = self
            .counters
            .iter()
            .min_by_key(|(_, c)| c.count)
            .map(|(k, c)| (k.clone(), *c))
            .expect("capacity ≥ 1");
        self.counters.remove(&victim);
        self.counters.insert(
            value.to_string(),
            Counter {
                count: min.count + n,
                error: min.count,
            },
        );
    }

    /// Estimated counter for a value (`None` = untracked, true count is at
    /// most the current minimum counter).
    pub fn get(&self, value: &str) -> Option<Counter> {
        self.counters.get(value).copied()
    }

    /// Upper bound on the true count of any *untracked* value.
    pub fn untracked_bound(&self) -> u64 {
        if self.counters.len() < self.capacity {
            0
        } else {
            self.counters.values().map(|c| c.count).min().unwrap_or(0)
        }
    }

    /// Is `value` guaranteed frequent (true share ≥ θ)?
    pub fn definitely_frequent(&self, value: &str, theta: f64) -> bool {
        let Some(c) = self.get(value) else {
            return false;
        };
        if self.total == 0 {
            return false;
        }
        (c.count - c.error) as f64 / self.total as f64 >= theta
    }

    /// Is `value` possibly rare (true share may be below θ)? This is the
    /// highlight-candidate test: the complement of
    /// [`SpaceSaving::definitely_frequent`].
    pub fn possibly_rare(&self, value: &str, theta: f64) -> bool {
        !self.definitely_frequent(value, theta)
    }

    /// Values whose *upper-bound* share reaches θ (the heavy hitters; the
    /// guarantee is that no value with true share ≥ θ is missing).
    pub fn heavy_hitters(&self, theta: f64) -> Vec<(&str, Counter)> {
        if self.total == 0 {
            return vec![];
        }
        let mut out: Vec<(&str, Counter)> = self
            .counters
            .iter()
            .filter(|(_, c)| c.count as f64 / self.total as f64 >= theta)
            .map(|(k, c)| (k.as_str(), *c))
            .collect();
        out.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
        out
    }

    /// Merge another sketch (pairwise sum, then shrink back to capacity).
    pub fn merge(&mut self, other: &SpaceSaving) {
        self.total += other.total;
        let self_untracked = self.untracked_bound();
        let other_untracked = other.untracked_bound();
        let mut merged: HashMap<String, Counter> = HashMap::new();
        for (k, c) in &self.counters {
            let o = other.get(k).unwrap_or(Counter {
                count: other_untracked,
                error: other_untracked,
            });
            merged.insert(
                k.clone(),
                Counter {
                    count: c.count + o.count,
                    error: c.error + o.error,
                },
            );
        }
        for (k, c) in &other.counters {
            merged.entry(k.clone()).or_insert(Counter {
                count: c.count + self_untracked,
                error: c.error + self_untracked,
            });
        }
        // Keep the `capacity` largest counters.
        let mut entries: Vec<(String, Counter)> = merged.into_iter().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.1.count));
        entries.truncate(self.capacity);
        self.counters = entries.into_iter().collect();
    }

    /// Rough memory footprint (for index-space accounting).
    pub fn approx_bytes(&self) -> u64 {
        self.counters
            .keys()
            .map(|k| k.len() as u64 + 24)
            .sum::<u64>()
            + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(10);
        for _ in 0..7 {
            s.add("a");
        }
        for _ in 0..3 {
            s.add("b");
        }
        assert_eq!(s.get("a"), Some(Counter { count: 7, error: 0 }));
        assert_eq!(s.get("b"), Some(Counter { count: 3, error: 0 }));
        assert_eq!(s.get("c"), None);
        assert_eq!(s.total(), 10);
        assert_eq!(s.untracked_bound(), 0);
    }

    #[test]
    fn frequent_values_are_never_missed() {
        // 100K observations over 10K distinct values; "hot" takes 10%.
        let mut s = SpaceSaving::new(64);
        let mut state = 7u64;
        for i in 0..100_000u64 {
            if i % 10 == 0 {
                s.add("hot");
            } else {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                s.add(&format!("v{}", state % 10_000));
            }
        }
        let c = s.get("hot").expect("heavy hitter must be tracked");
        let true_count = 10_000u64;
        assert!(c.count >= true_count, "upper bound");
        assert!(c.count - c.error <= true_count, "lower bound");
        assert!(s.definitely_frequent("hot", 0.05));
        assert!(s.len() <= 64);
        // Heavy hitters at 5% contain hot.
        let hh = s.heavy_hitters(0.05);
        assert!(hh.iter().any(|(k, _)| *k == "hot"));
    }

    #[test]
    fn rare_values_are_highlight_candidates() {
        let mut s = SpaceSaving::for_theta(0.1); // capacity 20
        for _ in 0..990 {
            s.add("common");
        }
        for i in 0..10 {
            s.add(&format!("rare{i}"));
        }
        assert!(s.definitely_frequent("common", 0.1));
        assert!(!s.possibly_rare("common", 0.1));
        for i in 0..10 {
            assert!(s.possibly_rare(&format!("rare{i}"), 0.1));
        }
        // Untracked values are trivially candidates.
        assert!(s.possibly_rare("never-seen", 0.1));
    }

    #[test]
    fn counts_are_always_upper_bounds() {
        // Property over a skewed stream: tracked estimate ∈ [true, true+err].
        let mut s = SpaceSaving::new(16);
        let mut truth: HashMap<String, u64> = HashMap::new();
        let mut state = 99u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            // Zipf-ish over 200 values.
            let v = format!("z{}", (state % 200).min(state % 7));
            *truth.entry(v.clone()).or_insert(0) += 1;
            s.add(&v);
        }
        for (k, c) in &s.counters {
            let t = truth.get(k).copied().unwrap_or(0);
            assert!(c.count >= t, "{k}: est {} < true {t}", c.count);
            assert!(c.count - c.error <= t, "{k}: lower bound violated");
        }
    }

    #[test]
    fn merge_preserves_bounds_and_capacity() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        for _ in 0..500 {
            a.add("x");
            b.add("y");
        }
        for i in 0..50 {
            a.add(&format!("a{i}"));
            b.add(&format!("b{i}"));
        }
        let total = a.total() + b.total();
        a.merge(&b);
        assert_eq!(a.total(), total);
        assert!(a.len() <= 8);
        // Both heavy values survive the merge with valid bounds.
        for v in ["x", "y"] {
            let c = a.get(v).expect("heavy value tracked after merge");
            assert!(c.count >= 500);
            assert!(c.count - c.error <= 500);
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let s = SpaceSaving::new(4);
        assert!(s.is_empty());
        assert!(s.heavy_hitters(0.5).is_empty());
        assert!(!s.definitely_frequent("x", 0.5));
        let mut s = SpaceSaving::new(1);
        s.add("a");
        s.add("b"); // evicts a
        assert!(s.get("a").is_none());
        assert_eq!(s.get("b"), Some(Counter { count: 2, error: 1 }));
    }

    #[test]
    fn bounded_memory_on_high_cardinality_attribute() {
        // The motivating case: caller ids. A million distinct subscribers
        // stay within ~capacity counters.
        let mut s = SpaceSaving::for_theta(0.01);
        for i in 0..100_000u64 {
            s.add(&format!("82{:08}", i % 50_000));
        }
        assert!(s.len() <= 208, "len {}", s.len());
        assert!(s.approx_bytes() < 32 << 10);
    }
}
