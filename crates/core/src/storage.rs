//! The SPATE storage (compression) layer.
//!
//! "The Storage layer passes newly arrived network snapshots through a
//! lossless compression process storing the results on a replicated big
//! data file system" (§IV). The layer owns only the *leaf pages* of the
//! SPATE index: one compressed file per 30-minute snapshot, organized in a
//! `/spate/<year>/<month>/<day>/<epoch>` directory hierarchy.

use codecs::{Codec, CodecError};
use dfs::{Dfs, DfsError};
use std::fmt;
use std::sync::Arc;
use telco_trace::snapshot::{Snapshot, SnapshotParseError};
use telco_trace::time::EpochId;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    Dfs(DfsError),
    Codec(CodecError),
    Parse(SnapshotParseError),
    /// The requested snapshot was decayed or never ingested.
    Missing(EpochId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Dfs(e) => write!(f, "dfs: {e}"),
            StorageError::Codec(e) => write!(f, "codec: {e}"),
            StorageError::Parse(e) => write!(f, "parse: {e}"),
            StorageError::Missing(e) => write!(f, "snapshot for epoch {} not stored", e.0),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<DfsError> for StorageError {
    fn from(e: DfsError) -> Self {
        StorageError::Dfs(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

impl From<SnapshotParseError> for StorageError {
    fn from(e: SnapshotParseError) -> Self {
        StorageError::Parse(e)
    }
}

/// Outcome of storing one snapshot.
#[derive(Debug, Clone)]
pub struct StoredSnapshot {
    pub epoch: EpochId,
    pub path: String,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
}

impl StoredSnapshot {
    /// Compression ratio `r_c = S / S_c` for this snapshot.
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Staging suffix for crash-consistent writes: `<leaf>.snap.tmp`.
pub const TMP_SUFFIX: &str = ".tmp";

/// The snapshot store: a codec in front of the replicated filesystem.
#[derive(Clone)]
pub struct SnapshotStore {
    dfs: Dfs,
    codec: Arc<dyn Codec>,
    root: String,
}

impl SnapshotStore {
    pub fn new(dfs: Dfs, codec: Arc<dyn Codec>) -> Self {
        Self {
            dfs,
            codec,
            root: "/spate".to_string(),
        }
    }

    /// Namespace the store under a different root (for side-by-side
    /// frameworks on one filesystem).
    pub fn with_root(mut self, root: &str) -> Self {
        self.root = root.trim_end_matches('/').to_string();
        self
    }

    pub fn codec_name(&self) -> &'static str {
        self.codec.name()
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The leaf path of an epoch: `/spate/<y>/<m>/<d>/<epoch>.snap`.
    pub fn path_for(&self, epoch: EpochId) -> String {
        let c = epoch.civil();
        format!(
            "{}/{:04}/{:02}/{:02}/{:010}.snap",
            self.root, c.year, c.month, c.day, epoch.0
        )
    }

    /// The staging path a snapshot is written to before commit.
    pub fn tmp_path_for(&self, epoch: EpochId) -> String {
        format!("{}{}", self.path_for(epoch), TMP_SUFFIX)
    }

    /// Serialize, compress and persist one snapshot.
    ///
    /// Crash-consistent: bytes land at `<leaf>.snap.tmp` first, then an
    /// atomic [`Dfs::rename`] commits them to the final leaf path. A crash
    /// mid-write leaves either nothing or an orphaned `.tmp` that the
    /// recovery scan ([`crate::framework::SpateFramework::restore`])
    /// deletes — readers can never observe a torn leaf.
    ///
    /// Each stage opens a tracing span ("segment" → "compress" →
    /// "dfs.write", the last inside the dfs crate) so the flame table
    /// attributes ingestion wall time per stage.
    pub fn store(&self, snapshot: &Snapshot) -> Result<StoredSnapshot, StorageError> {
        let raw = {
            let _s = obs::span("segment");
            snapshot.to_bytes()
        };
        let packed = {
            let _s = obs::span("compress");
            self.codec.compress_metered(&raw)
        };
        let path = self.path_for(snapshot.epoch);
        let tmp = self.tmp_path_for(snapshot.epoch);
        // A stale orphan from a crashed earlier attempt would block the
        // staging write; clear it first (write-once files).
        match self.dfs.delete(&tmp) {
            Ok(_) | Err(DfsError::NotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.dfs.write(&tmp, &packed)?;
        if let Err(e) = self.dfs.rename(&tmp, &path) {
            // Commit failed (e.g. the leaf already exists): don't leave the
            // staging file behind.
            let _ = self.dfs.delete(&tmp);
            return Err(e.into());
        }
        Ok(StoredSnapshot {
            epoch: snapshot.epoch,
            path,
            raw_bytes: raw.len() as u64,
            stored_bytes: packed.len() as u64,
        })
    }

    /// Load and decode the snapshot of an epoch.
    pub fn load(&self, epoch: EpochId) -> Result<Snapshot, StorageError> {
        let path = self.path_for(epoch);
        let packed = match self.dfs.read(&path) {
            Ok(p) => p,
            Err(DfsError::NotFound(_)) => return Err(StorageError::Missing(epoch)),
            Err(e) => return Err(e.into()),
        };
        self.decode(&packed)
    }

    /// Read the *compressed* bytes of an epoch without decoding (used by
    /// scans that decompress streaming-side).
    pub fn load_compressed(&self, epoch: EpochId) -> Result<Vec<u8>, StorageError> {
        let path = self.path_for(epoch);
        match self.dfs.read(&path) {
            Ok(p) => Ok(p),
            Err(DfsError::NotFound(_)) => Err(StorageError::Missing(epoch)),
            Err(e) => Err(e.into()),
        }
    }

    /// Decode previously-fetched compressed bytes.
    pub fn decode(&self, packed: &[u8]) -> Result<Snapshot, StorageError> {
        let raw = {
            let _s = obs::span("decompress");
            self.codec.decompress_metered(packed)?
        };
        let _s = obs::span("parse");
        Ok(Snapshot::from_bytes(&raw)?)
    }

    /// Evict the stored snapshot of an epoch (the decay fungus's file
    /// deletion). Returns freed logical bytes; 0 if it was already gone.
    pub fn evict(&self, epoch: EpochId) -> Result<u64, StorageError> {
        match self.dfs.delete(&self.path_for(epoch)) {
            Ok(n) => Ok(n),
            Err(DfsError::NotFound(_)) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    pub fn contains(&self, epoch: EpochId) -> bool {
        self.dfs.exists(&self.path_for(epoch))
    }

    /// Total stored (compressed, pre-replication) bytes under this root.
    /// Uncommitted `.tmp` staging files don't count — they are invisible
    /// to queries and reaped by recovery.
    pub fn stored_bytes(&self) -> u64 {
        self.dfs
            .list(&format!("{}/", self.root))
            .iter()
            .filter(|p| !p.ends_with(TMP_SUFFIX))
            .filter_map(|p| self.dfs.file_len(p).ok())
            .sum()
    }

    /// All committed leaf paths under this root, lexicographic (and thus
    /// epoch) order.
    pub fn committed_paths(&self) -> Vec<String> {
        self.dfs
            .list(&format!("{}/", self.root))
            .into_iter()
            .filter(|p| !p.ends_with(TMP_SUFFIX))
            .collect()
    }

    /// Orphaned staging files under this root (crashed ingests).
    pub fn orphan_tmp_paths(&self) -> Vec<String> {
        self.dfs
            .list(&format!("{}/", self.root))
            .into_iter()
            .filter(|p| p.ends_with(TMP_SUFFIX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecs::{GzipLite, Identity};
    use telco_trace::{TraceConfig, TraceGenerator};

    fn store_with(codec: Arc<dyn Codec>) -> SnapshotStore {
        SnapshotStore::new(Dfs::in_memory(), codec)
    }

    #[test]
    fn store_and_load_round_trip() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        let stored = store.store(&snap).unwrap();
        assert_eq!(stored.epoch, snap.epoch);
        assert!(
            stored.stored_bytes < stored.raw_bytes,
            "telco text must compress"
        );
        assert!(stored.ratio() > 2.0);

        let loaded = store.load(snap.epoch).unwrap();
        // Loading is schema-on-read: numeric fields come back as text, so
        // compare the canonical wire forms.
        assert_eq!(loaded.to_bytes(), snap.to_bytes());
        assert_eq!(loaded.epoch, snap.epoch);
        assert!(store.contains(snap.epoch));
    }

    #[test]
    fn paths_follow_the_temporal_hierarchy() {
        let store = store_with(Arc::new(Identity));
        // Epoch 31 on day 0 → 2016-01-18.
        assert_eq!(
            store.path_for(EpochId(31)),
            "/spate/2016/01/18/0000000031.snap"
        );
        // Day 14 → 2016-02-01.
        assert_eq!(
            store.path_for(EpochId(14 * 48)),
            "/spate/2016/02/01/0000000672.snap"
        );
    }

    #[test]
    fn missing_snapshots_are_reported() {
        let store = store_with(Arc::new(Identity));
        assert!(matches!(
            store.load(EpochId(99)),
            Err(StorageError::Missing(EpochId(99)))
        ));
        assert!(!store.contains(EpochId(99)));
        // Evicting something never stored is a no-op.
        assert_eq!(store.evict(EpochId(99)).unwrap(), 0);
    }

    #[test]
    fn eviction_frees_space() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let s0 = generator.next_snapshot().unwrap();
        let s1 = generator.next_snapshot().unwrap();
        store.store(&s0).unwrap();
        store.store(&s1).unwrap();
        let before = store.stored_bytes();
        let freed = store.evict(s0.epoch).unwrap();
        assert!(freed > 0);
        assert_eq!(store.stored_bytes(), before - freed);
        assert!(matches!(
            store.load(s0.epoch),
            Err(StorageError::Missing(_))
        ));
        assert!(store.load(s1.epoch).is_ok());
    }

    #[test]
    fn separate_roots_do_not_collide() {
        let fs = Dfs::in_memory();
        let a = SnapshotStore::new(fs.clone(), Arc::new(Identity)).with_root("/raw");
        let b = SnapshotStore::new(fs, Arc::new(GzipLite::default())).with_root("/spate");
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        a.store(&snap).unwrap();
        b.store(&snap).unwrap();
        assert!(a.contains(snap.epoch) && b.contains(snap.epoch));
        assert!(a.stored_bytes() > b.stored_bytes(), "identity vs gzip");
    }

    #[test]
    fn store_commits_atomically_over_stale_orphans() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        // Simulate a crashed earlier ingest: an orphaned staging file.
        let tmp = store.tmp_path_for(snap.epoch);
        store.dfs().write(&tmp, b"torn partial write").unwrap();
        // A retried store must replace the orphan and commit cleanly.
        store.store(&snap).unwrap();
        assert!(!store.dfs().exists(&tmp), "staging file must not survive");
        assert!(store.contains(snap.epoch));
        assert_eq!(store.load(snap.epoch).unwrap().to_bytes(), snap.to_bytes());
        assert!(store.orphan_tmp_paths().is_empty());
        assert_eq!(store.committed_paths().len(), 1);
    }

    #[test]
    fn compressed_payload_decodes_via_decode() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        store.store(&snap).unwrap();
        let packed = store.load_compressed(snap.epoch).unwrap();
        let decoded = store.decode(&packed).unwrap();
        assert_eq!(decoded.to_bytes(), snap.to_bytes());
    }
}
