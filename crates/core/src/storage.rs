//! The SPATE storage (compression) layer.
//!
//! "The Storage layer passes newly arrived network snapshots through a
//! lossless compression process storing the results on a replicated big
//! data file system" (§IV). The layer owns only the *leaf pages* of the
//! SPATE index, organized in a `/spate/<year>/<month>/<day>/<epoch>`
//! directory hierarchy, through one of two backends:
//!
//! - **Path-addressed** (the default): one compressed `.snap` file per
//!   30-minute snapshot.
//! - **Content-addressed** ([`SnapshotStore::new_cas`]): snapshots are
//!   chunked into per-attribute column pieces, deduplicated by content
//!   hash into shared pack files, and each epoch's leaf is a `.mf`
//!   manifest of chunk references (see the `cas` crate). Eviction
//!   releases refcounts and garbage-collects dead packs.
//!
//! Either way the index, decay and query layers above see the same
//! store/load/evict surface.

use cas::{CasConfig, CasError, CasRecoverReport, CasStore};
use codecs::{Codec, CodecError};
use dfs::{Dfs, DfsError};
use std::fmt;
use std::sync::Arc;
use telco_trace::snapshot::{Snapshot, SnapshotParseError};
use telco_trace::time::EpochId;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    Dfs(DfsError),
    Codec(CodecError),
    Parse(SnapshotParseError),
    /// The requested snapshot was decayed or never ingested.
    Missing(EpochId),
    /// Content-addressed backend failure (verification, structure).
    Cas(CasError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Dfs(e) => write!(f, "dfs: {e}"),
            StorageError::Codec(e) => write!(f, "codec: {e}"),
            StorageError::Parse(e) => write!(f, "parse: {e}"),
            StorageError::Missing(e) => write!(f, "snapshot for epoch {} not stored", e.0),
            StorageError::Cas(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<DfsError> for StorageError {
    fn from(e: DfsError) -> Self {
        StorageError::Dfs(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

impl From<SnapshotParseError> for StorageError {
    fn from(e: SnapshotParseError) -> Self {
        StorageError::Parse(e)
    }
}

impl From<CasError> for StorageError {
    fn from(e: CasError) -> Self {
        match e {
            CasError::Dfs(d) => StorageError::Dfs(d),
            CasError::Codec(c) => StorageError::Codec(c),
            CasError::Missing(epoch) => StorageError::Missing(EpochId(epoch)),
            other => StorageError::Cas(other),
        }
    }
}

/// Outcome of storing one snapshot.
#[derive(Debug, Clone)]
pub struct StoredSnapshot {
    pub epoch: EpochId,
    pub path: String,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
}

impl StoredSnapshot {
    /// Compression ratio `r_c = S / S_c` for this snapshot.
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Staging suffix for crash-consistent writes: `<leaf>.snap.tmp`.
pub const TMP_SUFFIX: &str = ".tmp";

/// How snapshot bytes land on the filesystem.
#[derive(Clone)]
enum Backend {
    /// One compressed file per epoch at its leaf path.
    Path { codec: Arc<dyn Codec> },
    /// Chunked, deduplicated, manifest-per-epoch (see the `cas` crate).
    Cas(CasStore),
}

/// The snapshot store: a compression backend in front of the replicated
/// filesystem.
#[derive(Clone)]
pub struct SnapshotStore {
    dfs: Dfs,
    backend: Backend,
    root: String,
}

impl SnapshotStore {
    /// Path-addressed store (the paper's storage layer).
    pub fn new(dfs: Dfs, codec: Arc<dyn Codec>) -> Self {
        Self {
            dfs,
            backend: Backend::Path { codec },
            root: "/spate".to_string(),
        }
    }

    /// Content-addressed store: dedup, Merkle manifests, decay-as-GC.
    pub fn new_cas(dfs: Dfs, cfg: CasConfig) -> Self {
        let cfg = CasConfig {
            root: "/spate".to_string(),
            ..cfg
        };
        Self {
            dfs: dfs.clone(),
            backend: Backend::Cas(CasStore::new(dfs, cfg)),
            root: "/spate".to_string(),
        }
    }

    /// Namespace the store under a different root (for side-by-side
    /// frameworks on one filesystem).
    pub fn with_root(mut self, root: &str) -> Self {
        self.root = root.trim_end_matches('/').to_string();
        if let Backend::Cas(cas) = self.backend {
            self.backend = Backend::Cas(cas.with_root(&self.root));
        }
        self
    }

    pub fn codec_name(&self) -> &'static str {
        match &self.backend {
            Backend::Path { codec } => codec.name(),
            Backend::Cas(cas) => cas.codec_name(),
        }
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The content-addressed backend, when this store uses one.
    pub fn cas(&self) -> Option<&CasStore> {
        match &self.backend {
            Backend::Cas(cas) => Some(cas),
            Backend::Path { .. } => None,
        }
    }

    /// Leaf filename suffix of this backend (`.snap` or `.mf`).
    pub fn leaf_suffix(&self) -> &'static str {
        match &self.backend {
            Backend::Path { .. } => ".snap",
            Backend::Cas(_) => ".mf",
        }
    }

    /// Rebuild backend state from the filesystem (refcounts, chunk and
    /// pack tables) and sweep orphans. No-op for the path backend, whose
    /// only state *is* the filesystem.
    pub fn recover_backend(&self) -> Option<CasRecoverReport> {
        self.cas().map(|cas| cas.recover())
    }

    /// The leaf path of an epoch: `/spate/<y>/<m>/<d>/<epoch>.snap` (or
    /// `.mf` for the content-addressed backend).
    pub fn path_for(&self, epoch: EpochId) -> String {
        let c = epoch.civil();
        format!(
            "{}/{:04}/{:02}/{:02}/{:010}{}",
            self.root,
            c.year,
            c.month,
            c.day,
            epoch.0,
            self.leaf_suffix()
        )
    }

    /// The staging path a snapshot is written to before commit.
    pub fn tmp_path_for(&self, epoch: EpochId) -> String {
        format!("{}{}", self.path_for(epoch), TMP_SUFFIX)
    }

    /// Serialize, compress and persist one snapshot.
    ///
    /// Crash-consistent: bytes land at `<leaf>.snap.tmp` first, then an
    /// atomic [`Dfs::rename`] commits them to the final leaf path. A crash
    /// mid-write leaves either nothing or an orphaned `.tmp` that the
    /// recovery scan ([`crate::framework::SpateFramework::restore`])
    /// deletes — readers can never observe a torn leaf.
    ///
    /// Each stage opens a tracing span ("segment" → "compress" →
    /// "dfs.write", the last inside the dfs crate) so the flame table
    /// attributes ingestion wall time per stage.
    pub fn store(&self, snapshot: &Snapshot) -> Result<StoredSnapshot, StorageError> {
        let raw = {
            let _s = obs::span("segment");
            snapshot.to_bytes()
        };
        match &self.backend {
            Backend::Path { codec } => {
                let packed = {
                    let _s = obs::span("compress");
                    codec.compress_metered(&raw)
                };
                let path = self.path_for(snapshot.epoch);
                let tmp = self.tmp_path_for(snapshot.epoch);
                // A stale orphan from a crashed earlier attempt would block
                // the staging write; clear it first (write-once files).
                match self.dfs.delete(&tmp) {
                    Ok(_) | Err(DfsError::NotFound(_)) => {}
                    Err(e) => return Err(e.into()),
                }
                self.dfs.write(&tmp, &packed)?;
                if let Err(e) = self.dfs.rename(&tmp, &path) {
                    // Commit failed (e.g. the leaf already exists): don't
                    // leave the staging file behind.
                    let _ = self.dfs.delete(&tmp);
                    return Err(e.into());
                }
                Ok(StoredSnapshot {
                    epoch: snapshot.epoch,
                    path,
                    raw_bytes: raw.len() as u64,
                    stored_bytes: packed.len() as u64,
                })
            }
            Backend::Cas(cas) => {
                // Chunk, dedup and commit; `stored_bytes` is the *marginal*
                // cost of this epoch (new pack + manifest), which is what
                // dedup makes interesting.
                let receipt = match cas.put_epoch(snapshot.epoch.0, &raw) {
                    Ok(r) => r,
                    Err(CasError::AlreadyStored(_)) => {
                        return Err(StorageError::Dfs(DfsError::AlreadyExists(
                            self.path_for(snapshot.epoch),
                        )))
                    }
                    Err(e) => return Err(e.into()),
                };
                Ok(StoredSnapshot {
                    epoch: snapshot.epoch,
                    path: receipt.path,
                    raw_bytes: raw.len() as u64,
                    stored_bytes: receipt.new_bytes,
                })
            }
        }
    }

    /// Load and decode the snapshot of an epoch.
    pub fn load(&self, epoch: EpochId) -> Result<Snapshot, StorageError> {
        let packed = self.load_compressed(epoch)?;
        self.decode(&packed)
    }

    /// Read the stored bytes of an epoch without parsing. For the path
    /// backend these are the compressed leaf bytes (scans decompress
    /// streaming-side); the content-addressed backend reassembles and
    /// hash-verifies the raw payload, so what it returns is already
    /// decompressed — [`Self::decode`] handles both.
    pub fn load_compressed(&self, epoch: EpochId) -> Result<Vec<u8>, StorageError> {
        let start = std::time::Instant::now();
        obs::cost::touch_epoch(u64::from(epoch.0));
        let result = match &self.backend {
            Backend::Path { .. } => {
                let path = self.path_for(epoch);
                match self.dfs.read(&path) {
                    Ok(p) => Ok(p),
                    Err(DfsError::NotFound(_)) => Err(StorageError::Missing(epoch)),
                    Err(e) => Err(e.into()),
                }
            }
            Backend::Cas(cas) => Ok(cas.get_epoch(epoch.0)?),
        };
        obs::cost::add_stage_ns("read", start.elapsed().as_nanos() as u64);
        result
    }

    /// Decode bytes previously fetched with [`Self::load_compressed`].
    pub fn decode(&self, packed: &[u8]) -> Result<Snapshot, StorageError> {
        let raw = match &self.backend {
            Backend::Path { codec } => {
                let _s = obs::span("decompress");
                let start = std::time::Instant::now();
                let raw = codec.decompress_metered(packed);
                obs::cost::add_stage_ns("decompress", start.elapsed().as_nanos() as u64);
                raw?
            }
            // The cas backend verified and decompressed on read.
            Backend::Cas(_) => packed.to_vec(),
        };
        let _s = obs::span("parse");
        let start = std::time::Instant::now();
        let snap = Snapshot::from_bytes(&raw);
        obs::cost::add_stage_ns("parse", start.elapsed().as_nanos() as u64);
        Ok(snap?)
    }

    /// Evict the stored snapshot of an epoch (the decay fungus's file
    /// deletion). Returns freed logical bytes; 0 if it was already gone.
    /// Under the content-addressed backend this drops the epoch's manifest,
    /// releases its chunk references and garbage-collects packs whose last
    /// live chunk went away — decay *is* GC.
    pub fn evict(&self, epoch: EpochId) -> Result<u64, StorageError> {
        match &self.backend {
            Backend::Path { .. } => match self.dfs.delete(&self.path_for(epoch)) {
                Ok(n) => Ok(n),
                Err(DfsError::NotFound(_)) => Ok(0),
                Err(e) => Err(e.into()),
            },
            Backend::Cas(cas) => Ok(cas.drop_epoch(epoch.0)?),
        }
    }

    pub fn contains(&self, epoch: EpochId) -> bool {
        match &self.backend {
            Backend::Path { .. } => self.dfs.exists(&self.path_for(epoch)),
            Backend::Cas(cas) => cas.contains(epoch.0),
        }
    }

    /// Total stored (compressed, pre-replication) bytes under this root.
    /// Uncommitted `.tmp` staging files don't count — they are invisible
    /// to queries and reaped by recovery. The content-addressed backend
    /// counts packs + manifests (shared chunks once, Merkle metadata
    /// excluded).
    pub fn stored_bytes(&self) -> u64 {
        match &self.backend {
            Backend::Path { .. } => self
                .dfs
                .list(&format!("{}/", self.root))
                .iter()
                .filter(|p| !p.ends_with(TMP_SUFFIX))
                .filter_map(|p| self.dfs.file_len(p).ok())
                .sum(),
            Backend::Cas(cas) => cas.listed_bytes(),
        }
    }

    /// All committed leaf paths under this root, lexicographic (and thus
    /// epoch) order. For the content-addressed backend these are the epoch
    /// manifests (packs and Merkle rollups are not leaves).
    pub fn committed_paths(&self) -> Vec<String> {
        let suffix = self.leaf_suffix();
        let skip_packs = format!("{}/packs/", self.root);
        let skip_merkle = format!("{}/merkle/", self.root);
        self.dfs
            .list(&format!("{}/", self.root))
            .into_iter()
            .filter(|p| {
                p.ends_with(suffix) && !p.starts_with(&skip_packs) && !p.starts_with(&skip_merkle)
            })
            .collect()
    }

    /// Orphaned staging files under this root (crashed ingests).
    pub fn orphan_tmp_paths(&self) -> Vec<String> {
        self.dfs
            .list(&format!("{}/", self.root))
            .into_iter()
            .filter(|p| p.ends_with(TMP_SUFFIX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecs::{GzipLite, Identity};
    use telco_trace::{TraceConfig, TraceGenerator};

    fn store_with(codec: Arc<dyn Codec>) -> SnapshotStore {
        SnapshotStore::new(Dfs::in_memory(), codec)
    }

    #[test]
    fn store_and_load_round_trip() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        let stored = store.store(&snap).unwrap();
        assert_eq!(stored.epoch, snap.epoch);
        assert!(
            stored.stored_bytes < stored.raw_bytes,
            "telco text must compress"
        );
        assert!(stored.ratio() > 2.0);

        let loaded = store.load(snap.epoch).unwrap();
        // Loading is schema-on-read: numeric fields come back as text, so
        // compare the canonical wire forms.
        assert_eq!(loaded.to_bytes(), snap.to_bytes());
        assert_eq!(loaded.epoch, snap.epoch);
        assert!(store.contains(snap.epoch));
    }

    #[test]
    fn paths_follow_the_temporal_hierarchy() {
        let store = store_with(Arc::new(Identity));
        // Epoch 31 on day 0 → 2016-01-18.
        assert_eq!(
            store.path_for(EpochId(31)),
            "/spate/2016/01/18/0000000031.snap"
        );
        // Day 14 → 2016-02-01.
        assert_eq!(
            store.path_for(EpochId(14 * 48)),
            "/spate/2016/02/01/0000000672.snap"
        );
    }

    #[test]
    fn missing_snapshots_are_reported() {
        let store = store_with(Arc::new(Identity));
        assert!(matches!(
            store.load(EpochId(99)),
            Err(StorageError::Missing(EpochId(99)))
        ));
        assert!(!store.contains(EpochId(99)));
        // Evicting something never stored is a no-op.
        assert_eq!(store.evict(EpochId(99)).unwrap(), 0);
    }

    #[test]
    fn eviction_frees_space() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let s0 = generator.next_snapshot().unwrap();
        let s1 = generator.next_snapshot().unwrap();
        store.store(&s0).unwrap();
        store.store(&s1).unwrap();
        let before = store.stored_bytes();
        let freed = store.evict(s0.epoch).unwrap();
        assert!(freed > 0);
        assert_eq!(store.stored_bytes(), before - freed);
        assert!(matches!(
            store.load(s0.epoch),
            Err(StorageError::Missing(_))
        ));
        assert!(store.load(s1.epoch).is_ok());
    }

    #[test]
    fn separate_roots_do_not_collide() {
        let fs = Dfs::in_memory();
        let a = SnapshotStore::new(fs.clone(), Arc::new(Identity)).with_root("/raw");
        let b = SnapshotStore::new(fs, Arc::new(GzipLite::default())).with_root("/spate");
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        a.store(&snap).unwrap();
        b.store(&snap).unwrap();
        assert!(a.contains(snap.epoch) && b.contains(snap.epoch));
        assert!(a.stored_bytes() > b.stored_bytes(), "identity vs gzip");
    }

    #[test]
    fn store_commits_atomically_over_stale_orphans() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        // Simulate a crashed earlier ingest: an orphaned staging file.
        let tmp = store.tmp_path_for(snap.epoch);
        store.dfs().write(&tmp, b"torn partial write").unwrap();
        // A retried store must replace the orphan and commit cleanly.
        store.store(&snap).unwrap();
        assert!(!store.dfs().exists(&tmp), "staging file must not survive");
        assert!(store.contains(snap.epoch));
        assert_eq!(store.load(snap.epoch).unwrap().to_bytes(), snap.to_bytes());
        assert!(store.orphan_tmp_paths().is_empty());
        assert_eq!(store.committed_paths().len(), 1);
    }

    #[test]
    fn compressed_payload_decodes_via_decode() {
        let store = store_with(Arc::new(GzipLite::default()));
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let snap = generator.next_snapshot().unwrap();
        store.store(&snap).unwrap();
        let packed = store.load_compressed(snap.epoch).unwrap();
        let decoded = store.decode(&packed).unwrap();
        assert_eq!(decoded.to_bytes(), snap.to_bytes());
    }
}
