//! Data exploration queries `Q(a, b, w)` and their results.
//!
//! "A data exploration query Q(a,b,w) consists of an attribute selection
//! a, a spatial bounding box b, and a temporal window of interest w ...
//! 'Explore the values of a within the spatial box b and temporal window
//! w'" (§VI-A).

use crate::index::highlights::{Highlights, Resolution};
use std::collections::HashSet;
use std::fmt;
use telco_trace::cells::{BoundingBox, CellLayout};
use telco_trace::record::Value;
use telco_trace::schema::{cdr, Schema, TableKind};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// A data exploration query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Attribute selection `a` (column names of CDR and/or NMS).
    pub attributes: Vec<String>,
    /// Spatial bounding box `b`.
    pub bbox: BoundingBox,
    /// Temporal window `w` (inclusive epoch range).
    pub window: (EpochId, EpochId),
}

impl Query {
    pub fn new(attributes: &[&str], bbox: BoundingBox) -> Self {
        Self {
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
            bbox,
            window: (EpochId(0), EpochId(0)),
        }
    }

    pub fn with_epoch_range(mut self, start: u32, end: u32) -> Self {
        assert!(start <= end);
        self.window = (EpochId(start), EpochId(end));
        self
    }

    pub fn with_window(mut self, start: EpochId, end: EpochId) -> Self {
        assert!(start <= end);
        self.window = (start, end);
        self
    }

    /// The requested window length in epochs.
    pub fn window_len(&self) -> u32 {
        self.window.1 .0 - self.window.0 .0 + 1
    }
}

/// A projected slice of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSlice {
    pub kind: TableKind,
    pub column_names: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl TableSlice {
    fn empty(kind: TableKind) -> Self {
        Self {
            kind,
            column_names: vec![],
            rows: vec![],
        }
    }
}

/// Exact (full-resolution) answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactResult {
    pub cdr: TableSlice,
    pub nms: TableSlice,
    /// Number of epochs read to answer.
    pub epochs_read: usize,
}

/// Epoch-level accounting of how much of a query window was served.
///
/// The degraded-coverage contract: a window query never lies about
/// completeness. Every epoch of `w` is classified as *served* (its leaf
/// was read at full resolution), *decayed* (evicted by the decay fungus —
/// absent by design, summarized by highlights), or *unavailable* (stored
/// but unreadable right now: replicas lost or corrupt beyond repair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Epochs in the requested window.
    pub requested: u32,
    /// Epochs whose full-resolution leaf was read successfully.
    pub served: u32,
    /// Epochs evicted by decay (deliberately absent).
    pub decayed: u32,
    /// Epochs whose leaf exists but could not be read (faults).
    pub unavailable: u32,
}

impl Coverage {
    /// Every requested epoch was served at full resolution.
    pub fn is_complete(&self) -> bool {
        self.served == self.requested
    }

    /// Served fraction of the requested window in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            f64::from(self.served) / f64::from(self.requested)
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} served ({} decayed, {} unavailable)",
            self.served, self.requested, self.decayed, self.unavailable
        )
    }
}

/// Result of a data exploration query.
#[derive(Debug)]
pub enum QueryResult {
    /// Full-resolution rows (window within the retained leaves).
    Exact(ExactResult),
    /// Full-resolution rows for *part* of the window: some epochs were
    /// unreadable (lost/corrupt replicas) or decayed mid-window, and the
    /// coverage report says exactly which fraction was served. Degraded
    /// availability yields partial data, never an error.
    Partial {
        result: ExactResult,
        coverage: Coverage,
    },
    /// The window decayed past full resolution: the lowest covering node's
    /// highlights, spatially filtered. "SPATE might retrieve records for a
    /// larger period than the one requested ... serves as an implicit
    /// prefetching mechanism."
    Summary {
        resolution: Resolution,
        highlights: Highlights,
    },
    /// Nothing retained covers the window.
    Unavailable,
}

impl QueryResult {
    pub fn is_exact(&self) -> bool {
        matches!(self, QueryResult::Exact(_))
    }

    pub fn is_partial(&self) -> bool {
        matches!(self, QueryResult::Partial { .. })
    }

    pub fn is_summary(&self) -> bool {
        matches!(self, QueryResult::Summary { .. })
    }

    /// Coverage of the answer: complete for exact results, the recorded
    /// report for partial ones, `None` for summaries/unavailable (no
    /// epoch-level accounting applies).
    pub fn coverage(&self) -> Option<Coverage> {
        match self {
            QueryResult::Exact(e) => {
                let n = e.epochs_read as u32;
                Some(Coverage {
                    requested: n,
                    served: n,
                    decayed: 0,
                    unavailable: 0,
                })
            }
            QueryResult::Partial { coverage, .. } => Some(*coverage),
            _ => None,
        }
    }

    /// Total exact rows across both tables (0 for summaries).
    pub fn row_count(&self) -> usize {
        match self {
            QueryResult::Exact(e) => e.cdr.rows.len() + e.nms.rows.len(),
            QueryResult::Partial { result, .. } => result.cdr.rows.len() + result.nms.rows.len(),
            _ => 0,
        }
    }
}

/// Resolve a query's attribute selection against both schemas.
pub struct Projection {
    pub cdr_cols: Vec<usize>,
    pub nms_cols: Vec<usize>,
    pub cdr_names: Vec<String>,
    pub nms_names: Vec<String>,
}

impl Projection {
    pub fn resolve(attributes: &[String]) -> Self {
        let cdr_schema = Schema::cdr();
        let nms_schema = Schema::nms();
        let mut p = Projection {
            cdr_cols: vec![],
            nms_cols: vec![],
            cdr_names: vec![],
            nms_names: vec![],
        };
        for a in attributes {
            if let Some(i) = cdr_schema.column_index(a) {
                p.cdr_cols.push(i);
                p.cdr_names.push(cdr_schema.column_name(i).to_string());
            }
            if let Some(i) = nms_schema.column_index(a) {
                p.nms_cols.push(i);
                p.nms_names.push(nms_schema.column_name(i).to_string());
            }
        }
        p
    }
}

/// Evaluate the exact branch: project + spatially filter loaded snapshots.
pub fn project_snapshots(snapshots: &[Snapshot], q: &Query, layout: &CellLayout) -> ExactResult {
    project_snapshot_refs(snapshots.iter(), q, layout)
}

/// [`project_snapshots`] over borrowed snapshots from any container —
/// the serving tier projects straight out of `Arc<Snapshot>` cache
/// entries without cloning a single row.
pub fn project_snapshot_refs<'a>(
    snapshots: impl Iterator<Item = &'a Snapshot>,
    q: &Query,
    layout: &CellLayout,
) -> ExactResult {
    let projection = Projection::resolve(&q.attributes);
    let cells: HashSet<u32> = layout.cells_in(&q.bbox).into_iter().collect();

    let mut out = ExactResult {
        cdr: TableSlice {
            kind: TableKind::Cdr,
            column_names: projection.cdr_names.clone(),
            rows: vec![],
        },
        nms: TableSlice {
            kind: TableKind::Nms,
            column_names: projection.nms_names.clone(),
            rows: vec![],
        },
        epochs_read: 0,
    };
    if projection.cdr_cols.is_empty() {
        out.cdr = TableSlice::empty(TableKind::Cdr);
    }
    if projection.nms_cols.is_empty() {
        out.nms = TableSlice::empty(TableKind::Nms);
    }

    let mut rows_scanned: u64 = 0;
    for snap in snapshots {
        out.epochs_read += 1;
        rows_scanned += (snap.cdr.len() + snap.nms.len()) as u64;
        if !projection.cdr_cols.is_empty() {
            for r in &snap.cdr {
                let cell = r.get(cdr::CELL_ID).as_i64().unwrap_or(-1);
                if cell >= 0 && cells.contains(&(cell as u32)) {
                    out.cdr.rows.push(
                        projection
                            .cdr_cols
                            .iter()
                            .map(|&c| r.get(c).clone())
                            .collect(),
                    );
                }
            }
        }
        if !projection.nms_cols.is_empty() {
            for r in &snap.nms {
                let cell = r
                    .get(telco_trace::schema::nms::CELL_ID)
                    .as_i64()
                    .unwrap_or(-1);
                if cell >= 0 && cells.contains(&(cell as u32)) {
                    out.nms.rows.push(
                        projection
                            .nms_cols
                            .iter()
                            .map(|&c| r.get(c).clone())
                            .collect(),
                    );
                }
            }
        }
    }
    obs::cost::add_rows(
        rows_scanned,
        (out.cdr.rows.len() + out.nms.rows.len()) as u64,
    );
    out
}

/// Evaluate a query under per-query cost accounting (the explore-path
/// `EXPLAIN ANALYZE`): installs a [`obs::CostProfile`] for the duration of
/// `fw.query(q)` and returns the result together with the profile. The
/// profile's trace id is the active request trace, or 0 outside serve.
pub fn profile_query(
    fw: &dyn crate::framework::ExplorationFramework,
    q: &Query,
) -> (QueryResult, obs::CostProfile) {
    let guard = obs::cost::begin(obs::trace::current().unwrap_or(0));
    let result = fw.query(q);
    (result, guard.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn query_builder() {
        let q =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(3, 9);
        assert_eq!(q.window_len(), 7);
        assert_eq!(q.attributes.len(), 2);
    }

    #[test]
    fn projection_resolves_across_tables() {
        let p = Projection::resolve(&[
            "upflux".to_string(),
            "call_drops".to_string(),
            "cell_id".to_string(), // present in both tables
            "nonexistent".to_string(),
        ]);
        assert_eq!(p.cdr_cols, vec![cdr::UPFLUX, cdr::CELL_ID]);
        assert_eq!(
            p.nms_cols,
            vec![
                telco_trace::schema::nms::CALL_DROPS,
                telco_trace::schema::nms::CELL_ID
            ]
        );
    }

    #[test]
    fn projection_over_generated_snapshots() {
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let layout = generator.layout().clone();
        let snaps: Vec<Snapshot> = (&mut generator).take(2).collect();
        let q =
            Query::new(&["upflux", "downflux"], BoundingBox::everything()).with_epoch_range(0, 1);
        let result = project_snapshots(&snaps, &q, &layout);
        let total_cdr: usize = snaps.iter().map(|s| s.cdr.len()).sum();
        assert_eq!(result.cdr.rows.len(), total_cdr);
        assert_eq!(result.cdr.column_names, vec!["upflux", "downflux"]);
        assert!(result.nms.rows.is_empty(), "no NMS attrs requested");
        assert_eq!(result.epochs_read, 2);
    }

    #[test]
    fn spatial_filter_reduces_rows() {
        let mut generator = TraceGenerator::new(TraceConfig::tiny());
        let layout = generator.layout().clone();
        let snaps: Vec<Snapshot> = (&mut generator).take(4).collect();
        let all = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 3);
        let half_box = BoundingBox::new(0.0, 0.0, 38_000.0, 38_000.0);
        let half = Query::new(&["upflux"], half_box).with_epoch_range(0, 3);
        let all_rows = project_snapshots(&snaps, &all, &layout).cdr.rows.len();
        let half_rows = project_snapshots(&snaps, &half, &layout).cdr.rows.len();
        assert!(half_rows < all_rows, "{half_rows} vs {all_rows}");
    }

    #[test]
    fn result_kind_helpers() {
        let e = QueryResult::Exact(ExactResult {
            cdr: TableSlice::empty(TableKind::Cdr),
            nms: TableSlice::empty(TableKind::Nms),
            epochs_read: 0,
        });
        assert!(e.is_exact());
        assert!(!e.is_summary());
        assert_eq!(e.row_count(), 0);
        assert!(!QueryResult::Unavailable.is_exact());
    }

    #[test]
    fn coverage_accounting() {
        let c = Coverage {
            requested: 10,
            served: 7,
            decayed: 2,
            unavailable: 1,
        };
        assert!(!c.is_complete());
        assert!((c.fraction() - 0.7).abs() < 1e-12);
        assert_eq!(c.to_string(), "7/10 served (2 decayed, 1 unavailable)");
        let full = Coverage {
            requested: 4,
            served: 4,
            ..Coverage::default()
        };
        assert!(full.is_complete());
        assert_eq!(Coverage::default().fraction(), 1.0, "empty window");
    }

    #[test]
    fn partial_results_report_their_coverage() {
        let r = QueryResult::Partial {
            result: ExactResult {
                cdr: TableSlice::empty(TableKind::Cdr),
                nms: TableSlice::empty(TableKind::Nms),
                epochs_read: 3,
            },
            coverage: Coverage {
                requested: 5,
                served: 3,
                decayed: 0,
                unavailable: 2,
            },
        };
        assert!(r.is_partial() && !r.is_exact());
        let c = r.coverage().unwrap();
        assert_eq!(c.served, 3);
        assert_eq!(c.unavailable, 2);
        assert!(QueryResult::Unavailable.coverage().is_none());
        // Exact results synthesize a complete report.
        let e = QueryResult::Exact(ExactResult {
            cdr: TableSlice::empty(TableKind::Cdr),
            nms: TableSlice::empty(TableKind::Nms),
            epochs_read: 4,
        });
        assert!(e.coverage().unwrap().is_complete());
    }
}
