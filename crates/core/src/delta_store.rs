//! Differential snapshot storage — the paper's future-work extension
//! (§IX-B) built on [`codecs::DeltaCodec`].
//!
//! Every `anchor_interval`-th epoch is stored self-contained ("anchor",
//! compressed with the regular codec); the epochs in between are stored as
//! deltas against their group's anchor. Loading a delta costs one extra
//! anchor read, so the interval trades storage against read amplification
//! — exactly "the trade-off between compression ratio and decompression
//! times for incremental archival data" the paper cites from the
//! differential-compression literature.

use crate::storage::{StorageError, StoredSnapshot};
use codecs::{Codec, DeltaCodec};
use dfs::{Dfs, DfsError};
use parking_lot::Mutex;
use std::sync::Arc;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Anchor + delta snapshot store.
pub struct DeltaSnapshotStore {
    dfs: Dfs,
    /// Codec for self-contained anchors.
    anchor_codec: Arc<dyn Codec>,
    delta: DeltaCodec,
    /// Every `anchor_interval`-th epoch is an anchor. Must divide 48 so
    /// whole days decay as complete groups.
    anchor_interval: u32,
    root: String,
    /// Raw bytes of the most recent anchor (hot path: sequential ingest).
    last_anchor: Mutex<Option<(EpochId, Arc<Vec<u8>>)>>,
}

impl DeltaSnapshotStore {
    pub fn new(dfs: Dfs, anchor_codec: Arc<dyn Codec>, anchor_interval: u32) -> Self {
        assert!(anchor_interval >= 1);
        assert_eq!(
            48 % anchor_interval,
            0,
            "anchor interval must divide the 48 epochs of a day"
        );
        Self {
            dfs,
            anchor_codec,
            delta: DeltaCodec::default(),
            anchor_interval,
            root: "/spate-delta".to_string(),
            last_anchor: Mutex::new(None),
        }
    }

    fn is_anchor(&self, epoch: EpochId) -> bool {
        epoch.0.is_multiple_of(self.anchor_interval)
    }

    fn anchor_of(&self, epoch: EpochId) -> EpochId {
        EpochId(epoch.0 - epoch.0 % self.anchor_interval)
    }

    fn path_for(&self, epoch: EpochId) -> String {
        let kind = if self.is_anchor(epoch) {
            "anchor"
        } else {
            "delta"
        };
        let c = epoch.civil();
        format!(
            "{}/{:04}/{:02}/{:02}/{:010}.{kind}",
            self.root, c.year, c.month, c.day, epoch.0
        )
    }

    /// Raw (uncompressed) bytes of an anchor epoch.
    fn load_anchor_raw(&self, anchor: EpochId) -> Result<Arc<Vec<u8>>, StorageError> {
        if let Some((e, raw)) = self.last_anchor.lock().as_ref() {
            if *e == anchor {
                return Ok(Arc::clone(raw));
            }
        }
        let packed = match self.dfs.read(&self.path_for(anchor)) {
            Ok(p) => p,
            Err(DfsError::NotFound(_)) => return Err(StorageError::Missing(anchor)),
            Err(e) => return Err(e.into()),
        };
        Ok(Arc::new(self.anchor_codec.decompress(&packed)?))
    }

    /// Store a snapshot: anchors self-contained, the rest as deltas.
    pub fn store(&self, snapshot: &Snapshot) -> Result<StoredSnapshot, StorageError> {
        let epoch = snapshot.epoch;
        let raw = snapshot.to_bytes();
        let packed = if self.is_anchor(epoch) {
            let packed = self.anchor_codec.compress(&raw);
            *self.last_anchor.lock() = Some((epoch, Arc::new(raw.clone())));
            packed
        } else {
            let anchor_raw = self.load_anchor_raw(self.anchor_of(epoch))?;
            self.delta.compress(&anchor_raw, &raw)
        };
        let path = self.path_for(epoch);
        self.dfs.write(&path, &packed)?;
        Ok(StoredSnapshot {
            epoch,
            path,
            raw_bytes: raw.len() as u64,
            stored_bytes: packed.len() as u64,
        })
    }

    /// Load a snapshot (deltas cost one extra anchor read).
    pub fn load(&self, epoch: EpochId) -> Result<Snapshot, StorageError> {
        let packed = match self.dfs.read(&self.path_for(epoch)) {
            Ok(p) => p,
            Err(DfsError::NotFound(_)) => return Err(StorageError::Missing(epoch)),
            Err(e) => return Err(e.into()),
        };
        let raw = if self.is_anchor(epoch) {
            self.anchor_codec.decompress(&packed)?
        } else {
            let anchor_raw = self.load_anchor_raw(self.anchor_of(epoch))?;
            self.delta.decompress(&anchor_raw, &packed)?
        };
        Ok(Snapshot::from_bytes(&raw)?)
    }

    /// Evict one epoch. Anchors refuse to go while any of their dependent
    /// deltas is still stored (the decay fungus evicts oldest-first in
    /// whole days, which always satisfies this).
    pub fn evict(&self, epoch: EpochId) -> Result<u64, StorageError> {
        if self.is_anchor(epoch) {
            for e in epoch.0 + 1..epoch.0 + self.anchor_interval {
                if self.dfs.exists(&self.path_for(EpochId(e))) {
                    return Err(StorageError::Dfs(DfsError::AlreadyExists(format!(
                        "anchor {} still has dependent delta {}",
                        epoch.0, e
                    ))));
                }
            }
        }
        match self.dfs.delete(&self.path_for(epoch)) {
            Ok(n) => Ok(n),
            Err(DfsError::NotFound(_)) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    pub fn contains(&self, epoch: EpochId) -> bool {
        self.dfs.exists(&self.path_for(epoch))
    }

    /// Total stored bytes under this root.
    pub fn stored_bytes(&self) -> u64 {
        self.dfs
            .list(&format!("{}/", self.root))
            .iter()
            .filter_map(|p| self.dfs.file_len(p).ok())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SnapshotStore;
    use codecs::GzipLite;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn stores() -> (DeltaSnapshotStore, SnapshotStore) {
        (
            DeltaSnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()), 8),
            SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default())),
        )
    }

    fn snapshots(n: usize) -> Vec<Snapshot> {
        TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0))
            .skip(16)
            .take(n)
            .collect()
    }

    #[test]
    fn round_trip_across_anchor_groups() {
        let (store, _) = stores();
        let snaps = snapshots(18); // spans three anchor groups (K=8)
        for s in &snaps {
            store.store(s).unwrap();
        }
        for s in &snaps {
            let loaded = store.load(s.epoch).unwrap();
            assert_eq!(loaded.to_bytes(), s.to_bytes());
        }
    }

    #[test]
    fn cold_loads_work_without_the_ingest_cache() {
        let (store, _) = stores();
        let snaps = snapshots(10);
        for s in &snaps {
            store.store(s).unwrap();
        }
        // Invalidate the in-memory anchor (as after a restart).
        *store.last_anchor.lock() = None;
        let mid = &snaps[5];
        assert_eq!(store.load(mid.epoch).unwrap().to_bytes(), mid.to_bytes());
    }

    #[test]
    fn deltas_reduce_storage_versus_plain_compression() {
        let (delta_store, plain_store) = stores();
        for s in snapshots(16) {
            delta_store.store(&s).unwrap();
            plain_store.store(&s).unwrap();
        }
        let d = delta_store.stored_bytes();
        let p = plain_store.stored_bytes();
        assert!(
            (d as f64) < p as f64 * 0.95,
            "delta {d} should undercut plain {p}"
        );
    }

    #[test]
    fn anchors_refuse_eviction_while_deltas_depend_on_them() {
        let (store, _) = stores();
        let snaps = snapshots(10);
        for s in &snaps {
            store.store(s).unwrap();
        }
        let anchor = store.anchor_of(snaps[0].epoch);
        assert!(store.evict(anchor).is_err(), "dependents still present");
        // Evict the group oldest-first: deltas, then the anchor.
        for e in anchor.0 + 1..anchor.0 + 8 {
            store.evict(EpochId(e)).unwrap();
        }
        assert!(store.evict(anchor).unwrap() > 0);
        assert!(!store.contains(anchor));
        // Later groups unaffected.
        assert!(store.load(snaps[9].epoch).is_ok());
    }

    #[test]
    fn missing_epochs_are_reported() {
        let (store, _) = stores();
        assert!(matches!(
            store.load(EpochId(999)),
            Err(StorageError::Missing(_))
        ));
        assert_eq!(store.evict(EpochId(999)).unwrap(), 0);
    }
}
