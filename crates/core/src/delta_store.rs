//! Differential snapshot storage — the paper's future-work extension
//! (§IX-B) built on [`codecs::DeltaCodec`].
//!
//! Every `anchor_interval`-th epoch is stored self-contained ("anchor",
//! compressed with the regular codec); the epochs in between are stored as
//! deltas against their group's anchor. Loading a delta costs one extra
//! anchor read, so the interval trades storage against read amplification
//! — exactly "the trade-off between compression ratio and decompression
//! times for incremental archival data" the paper cites from the
//! differential-compression literature.

use crate::storage::{StorageError, StoredSnapshot};
use cas::{CasConfig, CasError, CasStore};
use codecs::{Codec, DeltaCodec};
use dfs::{Dfs, DfsError};
use parking_lot::Mutex;
use std::sync::Arc;
use telco_trace::snapshot::Snapshot;
use telco_trace::time::EpochId;

/// Where anchor and delta payloads land.
enum DeltaBackend {
    /// One write-once file per epoch (`.anchor` / `.delta`).
    Dfs,
    /// Content-addressed: anchors go in *raw* (the chunker's columnar
    /// split + pack compression replaces the anchor codec, and identical
    /// columns dedup across anchors); delta payloads go in as opaque
    /// blobs. Eviction inherits decay-as-GC.
    Cas(CasStore),
}

/// Anchor + delta snapshot store.
pub struct DeltaSnapshotStore {
    dfs: Dfs,
    backend: DeltaBackend,
    /// Codec for self-contained anchors (path backend only).
    anchor_codec: Arc<dyn Codec>,
    delta: DeltaCodec,
    /// Every `anchor_interval`-th epoch is an anchor. Must divide 48 so
    /// whole days decay as complete groups.
    anchor_interval: u32,
    root: String,
    /// Raw bytes of the most recent anchor (hot path: sequential ingest).
    last_anchor: Mutex<Option<(EpochId, Arc<Vec<u8>>)>>,
}

impl DeltaSnapshotStore {
    pub fn new(dfs: Dfs, anchor_codec: Arc<dyn Codec>, anchor_interval: u32) -> Self {
        Self::with_backend(dfs, DeltaBackend::Dfs, anchor_codec, anchor_interval)
    }

    /// Delta store over the content-addressed backend.
    pub fn new_cas(dfs: Dfs, anchor_codec: Arc<dyn Codec>, anchor_interval: u32) -> Self {
        let cas = CasStore::new(dfs.clone(), CasConfig::default().with_root("/spate-delta"));
        Self::with_backend(dfs, DeltaBackend::Cas(cas), anchor_codec, anchor_interval)
    }

    fn with_backend(
        dfs: Dfs,
        backend: DeltaBackend,
        anchor_codec: Arc<dyn Codec>,
        anchor_interval: u32,
    ) -> Self {
        assert!(anchor_interval >= 1);
        assert_eq!(
            48 % anchor_interval,
            0,
            "anchor interval must divide the 48 epochs of a day"
        );
        Self {
            dfs,
            backend,
            anchor_codec,
            delta: DeltaCodec::default(),
            anchor_interval,
            root: "/spate-delta".to_string(),
            last_anchor: Mutex::new(None),
        }
    }

    fn is_anchor(&self, epoch: EpochId) -> bool {
        epoch.0.is_multiple_of(self.anchor_interval)
    }

    fn anchor_of(&self, epoch: EpochId) -> EpochId {
        EpochId(epoch.0 - epoch.0 % self.anchor_interval)
    }

    fn path_for(&self, epoch: EpochId) -> String {
        let kind = if self.is_anchor(epoch) {
            "anchor"
        } else {
            "delta"
        };
        let c = epoch.civil();
        format!(
            "{}/{:04}/{:02}/{:02}/{:010}.{kind}",
            self.root, c.year, c.month, c.day, epoch.0
        )
    }

    /// Stored payload of an epoch: compressed file bytes on the path
    /// backend, reassembled (hash-verified) cas bytes otherwise.
    fn read_payload(&self, epoch: EpochId) -> Result<Vec<u8>, StorageError> {
        match &self.backend {
            DeltaBackend::Dfs => match self.dfs.read(&self.path_for(epoch)) {
                Ok(p) => Ok(p),
                Err(DfsError::NotFound(_)) => Err(StorageError::Missing(epoch)),
                Err(e) => Err(e.into()),
            },
            DeltaBackend::Cas(cas) => Ok(cas.get_epoch(epoch.0)?),
        }
    }

    /// Persist an epoch payload; returns (leaf path, stored bytes).
    fn write_payload(&self, epoch: EpochId, payload: &[u8]) -> Result<(String, u64), StorageError> {
        match &self.backend {
            DeltaBackend::Dfs => {
                let path = self.path_for(epoch);
                self.dfs.write(&path, payload)?;
                Ok((path, payload.len() as u64))
            }
            DeltaBackend::Cas(cas) => match cas.put_epoch(epoch.0, payload) {
                Ok(r) => Ok((r.path, r.new_bytes)),
                Err(CasError::AlreadyStored(_)) => Err(StorageError::Dfs(DfsError::AlreadyExists(
                    self.path_for(epoch),
                ))),
                Err(e) => Err(e.into()),
            },
        }
    }

    /// Raw (uncompressed) bytes of an anchor epoch.
    fn load_anchor_raw(&self, anchor: EpochId) -> Result<Arc<Vec<u8>>, StorageError> {
        if let Some((e, raw)) = self.last_anchor.lock().as_ref() {
            if *e == anchor {
                return Ok(Arc::clone(raw));
            }
        }
        let payload = self.read_payload(anchor)?;
        let raw = match &self.backend {
            DeltaBackend::Dfs => self.anchor_codec.decompress(&payload)?,
            // The cas backend stores anchors raw.
            DeltaBackend::Cas(_) => payload,
        };
        Ok(Arc::new(raw))
    }

    /// Store a snapshot: anchors self-contained, the rest as deltas.
    pub fn store(&self, snapshot: &Snapshot) -> Result<StoredSnapshot, StorageError> {
        let epoch = snapshot.epoch;
        let raw = snapshot.to_bytes();
        let buf: Vec<u8>;
        let payload: &[u8] = if self.is_anchor(epoch) {
            match &self.backend {
                DeltaBackend::Dfs => {
                    buf = self.anchor_codec.compress(&raw);
                    &buf
                }
                // The cas chunker compresses (and dedups) anchors itself.
                DeltaBackend::Cas(_) => &raw,
            }
        } else {
            let anchor_raw = self.load_anchor_raw(self.anchor_of(epoch))?;
            buf = self.delta.compress(&anchor_raw, &raw);
            &buf
        };
        let (path, stored_bytes) = self.write_payload(epoch, payload)?;
        if self.is_anchor(epoch) {
            *self.last_anchor.lock() = Some((epoch, Arc::new(raw.clone())));
        }
        Ok(StoredSnapshot {
            epoch,
            path,
            raw_bytes: raw.len() as u64,
            stored_bytes,
        })
    }

    /// Load a snapshot (deltas cost one extra anchor read).
    pub fn load(&self, epoch: EpochId) -> Result<Snapshot, StorageError> {
        let payload = self.read_payload(epoch)?;
        let raw = if self.is_anchor(epoch) {
            match &self.backend {
                DeltaBackend::Dfs => self.anchor_codec.decompress(&payload)?,
                DeltaBackend::Cas(_) => payload,
            }
        } else {
            let anchor_raw = self.load_anchor_raw(self.anchor_of(epoch))?;
            self.delta.decompress(&anchor_raw, &payload)?
        };
        Ok(Snapshot::from_bytes(&raw)?)
    }

    /// Evict one epoch. Anchors refuse to go while any of their dependent
    /// deltas is still stored (the decay fungus evicts oldest-first in
    /// whole days, which always satisfies this).
    pub fn evict(&self, epoch: EpochId) -> Result<u64, StorageError> {
        if self.is_anchor(epoch) {
            for e in epoch.0 + 1..epoch.0 + self.anchor_interval {
                if self.contains(EpochId(e)) {
                    return Err(StorageError::Dfs(DfsError::AlreadyExists(format!(
                        "anchor {} still has dependent delta {}",
                        epoch.0, e
                    ))));
                }
            }
        }
        let freed = match &self.backend {
            DeltaBackend::Dfs => match self.dfs.delete(&self.path_for(epoch)) {
                Ok(n) => n,
                Err(DfsError::NotFound(_)) => 0,
                Err(e) => return Err(e.into()),
            },
            DeltaBackend::Cas(cas) => cas.drop_epoch(epoch.0)?,
        };
        // The evicted epoch may be the cached ingest anchor; a later delta
        // write must not base itself on (or a load resolve through) an
        // anchor that no longer exists on the filesystem.
        if self.is_anchor(epoch) {
            let mut la = self.last_anchor.lock();
            if la.as_ref().is_some_and(|(e, _)| *e == epoch) {
                *la = None;
            }
        }
        Ok(freed)
    }

    pub fn contains(&self, epoch: EpochId) -> bool {
        match &self.backend {
            DeltaBackend::Dfs => self.dfs.exists(&self.path_for(epoch)),
            DeltaBackend::Cas(cas) => cas.contains(epoch.0),
        }
    }

    /// Total stored bytes under this root.
    pub fn stored_bytes(&self) -> u64 {
        match &self.backend {
            DeltaBackend::Dfs => self
                .dfs
                .list(&format!("{}/", self.root))
                .iter()
                .filter_map(|p| self.dfs.file_len(p).ok())
                .sum(),
            DeltaBackend::Cas(cas) => cas.listed_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SnapshotStore;
    use codecs::GzipLite;
    use telco_trace::{TraceConfig, TraceGenerator};

    fn stores() -> (DeltaSnapshotStore, SnapshotStore) {
        (
            DeltaSnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default()), 8),
            SnapshotStore::new(Dfs::in_memory(), Arc::new(GzipLite::default())),
        )
    }

    fn snapshots(n: usize) -> Vec<Snapshot> {
        TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0))
            .skip(16)
            .take(n)
            .collect()
    }

    #[test]
    fn round_trip_across_anchor_groups() {
        let (store, _) = stores();
        let snaps = snapshots(18); // spans three anchor groups (K=8)
        for s in &snaps {
            store.store(s).unwrap();
        }
        for s in &snaps {
            let loaded = store.load(s.epoch).unwrap();
            assert_eq!(loaded.to_bytes(), s.to_bytes());
        }
    }

    #[test]
    fn cold_loads_work_without_the_ingest_cache() {
        let (store, _) = stores();
        let snaps = snapshots(10);
        for s in &snaps {
            store.store(s).unwrap();
        }
        // Invalidate the in-memory anchor (as after a restart).
        *store.last_anchor.lock() = None;
        let mid = &snaps[5];
        assert_eq!(store.load(mid.epoch).unwrap().to_bytes(), mid.to_bytes());
    }

    #[test]
    fn deltas_reduce_storage_versus_plain_compression() {
        let (delta_store, plain_store) = stores();
        for s in snapshots(16) {
            delta_store.store(&s).unwrap();
            plain_store.store(&s).unwrap();
        }
        let d = delta_store.stored_bytes();
        let p = plain_store.stored_bytes();
        assert!(
            (d as f64) < p as f64 * 0.95,
            "delta {d} should undercut plain {p}"
        );
    }

    #[test]
    fn anchors_refuse_eviction_while_deltas_depend_on_them() {
        let (store, _) = stores();
        let snaps = snapshots(10);
        for s in &snaps {
            store.store(s).unwrap();
        }
        let anchor = store.anchor_of(snaps[0].epoch);
        assert!(store.evict(anchor).is_err(), "dependents still present");
        // Evict the group oldest-first: deltas, then the anchor.
        for e in anchor.0 + 1..anchor.0 + 8 {
            store.evict(EpochId(e)).unwrap();
        }
        assert!(store.evict(anchor).unwrap() > 0);
        assert!(!store.contains(anchor));
        // Later groups unaffected.
        assert!(store.load(snaps[9].epoch).is_ok());
    }

    #[test]
    fn evicting_the_cached_anchor_invalidates_the_ingest_cache() {
        let (store, _) = stores();
        let snaps = snapshots(9); // epochs 16..=24, anchors at 16 and 24
        for s in &snaps[..8] {
            store.store(s).unwrap();
        }
        // Decay the whole group oldest-first: deltas, then the anchor.
        for e in 17..24 {
            store.evict(EpochId(e)).unwrap();
        }
        assert!(store.evict(EpochId(16)).unwrap() > 0);
        // A delta write for the decayed group must fail loudly — before
        // the cache was invalidated on eviction, the stale `last_anchor`
        // let this silently commit a delta against a deleted anchor.
        assert!(matches!(
            store.store(&snaps[1]),
            Err(StorageError::Missing(EpochId(16)))
        ));
        // Loads must agree that the group is gone.
        assert!(matches!(
            store.load(snaps[1].epoch),
            Err(StorageError::Missing(_))
        ));
    }

    #[test]
    fn cas_backend_round_trips_dedups_and_decays_to_zero() {
        let store = DeltaSnapshotStore::new_cas(Dfs::in_memory(), Arc::new(GzipLite::default()), 8);
        let snaps = snapshots(16); // two full anchor groups
        for s in &snaps {
            store.store(s).unwrap();
        }
        for s in &snaps {
            assert_eq!(store.load(s.epoch).unwrap().to_bytes(), s.to_bytes());
        }
        assert!(store.stored_bytes() > 0);
        // Anchors still refuse eviction while dependents exist.
        assert!(store.evict(EpochId(16)).is_err());
        // Full decay, oldest-first per group, reaches an empty store: the
        // content-addressed backend garbage-collects every shared chunk.
        for group in [16u32, 24] {
            for e in group + 1..group + 8 {
                store.evict(EpochId(e)).unwrap();
            }
            store.evict(EpochId(group)).unwrap();
        }
        assert_eq!(store.stored_bytes(), 0);
    }

    #[test]
    fn missing_epochs_are_reported() {
        let (store, _) = stores();
        assert!(matches!(
            store.load(EpochId(999)),
            Err(StorageError::Missing(_))
        ));
        assert_eq!(store.evict(EpochId(999)).unwrap(), 0);
    }
}
