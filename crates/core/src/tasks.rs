//! The eight telco-specific workloads of the paper's evaluation (§VII-E):
//! T1 equality, T2 range, T3 aggregate, T4 join, T5 privacy — "basic
//! operational and analytical queries ... executed without Spark
//! parallelization" — and T6 statistics, T7 clustering, T8 regression —
//! "heavier computational tasks ... executed with Spark parallelization"
//! (here, the `engine` crate).
//!
//! Every task runs against an [`ExplorationFramework`], so RAW, SHAHED and
//! SPATE execute identical logic over their own storage paths — the
//! response-time comparison of Figs. 11–12.

use crate::framework::ExplorationFramework;
use engine::{
    colstats, correlation_matrix, kmeans, linreg_ridge, ColStats, Dataset, KMeansModel, LinearModel,
};
use privacy::{Anonymizer, Hierarchy};
use std::collections::HashMap;
use telco_trace::schema::{cdr, nms};
use telco_trace::time::EpochId;

/// A task's measured wall-clock cost in seconds.
pub type Seconds = f64;

/// T1 — Equality: "retrieve the download and upload bytes for a requested
/// snapshot, e.g. `SELECT upflux, downflux FROM CDR WHERE
/// ts='201601221530'`".
pub fn t1_equality(fw: &dyn ExplorationFramework, epoch: EpochId) -> (Vec<(i64, i64)>, Seconds) {
    let span = obs::span("core.task.t1_equality");
    let rows = match fw.load_epoch(epoch) {
        Some(snap) => {
            let ts = epoch.civil().compact();
            snap.cdr
                .iter()
                .filter(|r| r.get(cdr::TS_START).as_text() == ts)
                .map(|r| {
                    (
                        r.get(cdr::UPFLUX).as_i64().unwrap_or(0),
                        r.get(cdr::DOWNFLUX).as_i64().unwrap_or(0),
                    )
                })
                .collect()
        }
        None => vec![],
    };
    (rows, span.finish_secs())
}

/// T2 — Range: the same projection over a time window
/// (`WHERE ts >= … AND ts <= …`).
pub fn t2_range(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
) -> (Vec<(i64, i64)>, Seconds) {
    let span = obs::span("core.task.t2_range");
    let mut rows = Vec::new();
    for snap in fw.scan(start, end) {
        for r in &snap.cdr {
            rows.push((
                r.get(cdr::UPFLUX).as_i64().unwrap_or(0),
                r.get(cdr::DOWNFLUX).as_i64().unwrap_or(0),
            ));
        }
    }
    (rows, span.finish_secs())
}

/// Output of T3: drop counters per cell and drop-call rate per cluster of
/// cells (grouped by controller).
#[derive(Debug, Clone)]
pub struct AggregateResult {
    pub drops_per_cell: HashMap<u32, i64>,
    pub drop_rate_per_cluster: HashMap<u32, f64>,
}

/// T3 — Aggregate: "retrieve the NMS counters for the drop calls of each
/// cell tower and calculate the drop call rate for each cluster of cells
/// (`SELECT cellid, SUM(val) FROM NMS WHERE … GROUP BY cellid`)".
pub fn t3_aggregate(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
) -> (AggregateResult, Seconds) {
    let span = obs::span("core.task.t3_aggregate");
    let mut drops_per_cell: HashMap<u32, i64> = HashMap::new();
    let mut cluster_counts: HashMap<u32, (i64, i64)> = HashMap::new(); // (drops, attempts)
    let layout = fw.layout();
    for snap in fw.scan(start, end) {
        for r in &snap.nms {
            let Some(cell_id) = r.get(nms::CELL_ID).as_i64() else {
                continue;
            };
            if cell_id < 0 || cell_id as usize >= layout.len() {
                continue;
            }
            let drops = r.get(nms::CALL_DROPS).as_i64().unwrap_or(0);
            let attempts = r.get(nms::CALL_ATTEMPTS).as_i64().unwrap_or(0);
            *drops_per_cell.entry(cell_id as u32).or_insert(0) += drops;
            let cluster = layout.get(cell_id as u32).controller_id;
            let entry = cluster_counts.entry(cluster).or_insert((0, 0));
            entry.0 += drops;
            entry.1 += attempts;
        }
    }
    let drop_rate_per_cluster = cluster_counts
        .into_iter()
        .map(|(cluster, (drops, attempts))| {
            (
                cluster,
                if attempts > 0 {
                    drops as f64 / attempts as f64
                } else {
                    0.0
                },
            )
        })
        .collect();
    (
        AggregateResult {
            drops_per_cell,
            drop_rate_per_cluster,
        },
        span.finish_secs(),
    )
}

/// A detected relocation: a subscriber observed at two different cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    pub caller_id: String,
    pub from_cell: u32,
    pub to_cell: u32,
    pub from_epoch: EpochId,
    pub to_epoch: EpochId,
}

/// T4 — Join: "a self-join among two CDR tables ... identify the products
/// that have changed their location (as identified by the cell towers)".
///
/// Implemented as the paper describes it behaves: a nested loop whose
/// inner side re-reads the stored snapshots once per outer epoch — this is
/// the task where SPATE's compressed input streams win 4–5× over
/// uncompressed storage, because the repeated I/O dominates.
pub fn t4_join(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
) -> (Vec<Relocation>, Seconds) {
    let span = obs::span("core.task.t4_join");
    let mut out = Vec::new();
    for e1 in start.0..=end.0 {
        let Some(outer) = fw.load_epoch(EpochId(e1)) else {
            continue;
        };
        // Caller → cell in the outer epoch.
        let mut outer_cells: HashMap<String, u32> = HashMap::new();
        for r in &outer.cdr {
            if let Some(cell) = r.get(cdr::CELL_ID).as_i64() {
                if cell >= 0 {
                    outer_cells.insert(r.get(cdr::CALLER_ID).as_text(), cell as u32);
                }
            }
        }
        // Inner side: re-read every later epoch from storage.
        for e2 in e1 + 1..=end.0 {
            let Some(inner) = fw.load_epoch(EpochId(e2)) else {
                continue;
            };
            for r in &inner.cdr {
                let caller = r.get(cdr::CALLER_ID).as_text();
                let Some(&from_cell) = outer_cells.get(&caller) else {
                    continue;
                };
                let Some(to_cell) = r.get(cdr::CELL_ID).as_i64() else {
                    continue;
                };
                if to_cell >= 0 && to_cell as u32 != from_cell {
                    out.push(Relocation {
                        caller_id: caller,
                        from_cell,
                        to_cell: to_cell as u32,
                        from_epoch: EpochId(e1),
                        to_epoch: EpochId(e2),
                    });
                }
            }
        }
    }
    (out, span.finish_secs())
}

/// T5 — Privacy: "retrieves and anonymizes the result set based on the
/// k-anonymity model ... generalizing, substituting ... and removing
/// information as appropriate to make the quasi-identifiers
/// indistinguishable among k rows."
///
/// Quasi-identifiers: caller MSISDN (digit masking), call duration
/// (widening ranges) and cell id (masking).
pub fn t5_privacy(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
    k: usize,
) -> (Option<privacy::AnonymizedTable>, Seconds) {
    let span = obs::span("core.task.t5_privacy");
    let mut records = Vec::new();
    for snap in fw.scan(start, end) {
        records.extend(snap.cdr.iter().cloned());
    }
    let anonymizer = Anonymizer::new(
        vec![
            (cdr::CALLER_ID, Hierarchy::MaskSuffix { levels: 10 }),
            (
                cdr::DURATION_S,
                Hierarchy::NumericRange {
                    base_width: 60.0,
                    levels: 6,
                },
            ),
            (cdr::CELL_ID, Hierarchy::MaskSuffix { levels: 4 }),
        ],
        k,
    )
    .with_suppression_limit(0.05);
    let result = anonymizer.anonymize(&records);
    (result, span.finish_secs())
}

/// Numeric CDR columns analyzed by T6/T8.
const T6_COLUMNS: [usize; 4] = [
    cdr::DURATION_S,
    cdr::UPFLUX,
    cdr::DOWNFLUX,
    cdr::BILLING_CLASS,
];

/// Output of T6: column statistics plus the Pearson correlation matrix
/// over the analyzed columns.
#[derive(Debug, Clone)]
pub struct StatisticsResult {
    pub col_stats: ColStats,
    /// `T6_COLUMNS.len()`-square Pearson correlation matrix.
    pub correlation: Vec<Vec<f64>>,
}

/// T6 — Statistics: "generate a variety of multivariate statistics ...
/// column-wise max, min, mean, variance, number of non-zeros and the total
/// count" (Spark's `Statistics.colStats`), plus the column correlation
/// matrix (`Statistics.corr`) — engine-parallelized.
pub fn t6_statistics(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
) -> (Option<StatisticsResult>, Seconds) {
    let span = obs::span("core.task.t6_statistics");
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for snap in fw.scan(start, end) {
        for r in &snap.cdr {
            rows.push(
                T6_COLUMNS
                    .iter()
                    .map(|&c| r.get(c).as_f64().unwrap_or(0.0))
                    .collect(),
            );
        }
    }
    let dataset = Dataset::parallelize(rows);
    let result = match (
        colstats(dataset.clone(), T6_COLUMNS.len()),
        correlation_matrix(dataset, T6_COLUMNS.len()),
    ) {
        (Some(col_stats), Some(correlation)) => Some(StatisticsResult {
            col_stats,
            correlation,
        }),
        _ => None,
    };
    (result, span.finish_secs())
}

/// T7 — Clustering: "cluster a specific range of snapshots using the
/// k-means algorithm ... based on the CDR and NMS data."
///
/// Features per NMS report: cell site coordinates plus load counters.
pub fn t7_clustering(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
    k: usize,
) -> (KMeansModel, Seconds) {
    let span = obs::span("core.task.t7_clustering");
    let layout = fw.layout();
    let mut points: Vec<Vec<f64>> = Vec::new();
    for snap in fw.scan(start, end) {
        for r in &snap.nms {
            let Some(cell_id) = r.get(nms::CELL_ID).as_i64() else {
                continue;
            };
            if cell_id < 0 || cell_id as usize >= layout.len() {
                continue;
            }
            let cell = layout.get(cell_id as u32);
            points.push(vec![
                cell.x_m / 1000.0,
                cell.y_m / 1000.0,
                r.get(nms::CALL_DROPS).as_f64().unwrap_or(0.0),
                r.get(nms::CALL_ATTEMPTS).as_f64().unwrap_or(0.0),
            ]);
        }
    }
    let model = kmeans(&Dataset::parallelize(points), k, 20);
    (model, span.finish_secs())
}

/// T8 — Regression: "estimates relationships among the attributes ...
/// using linear regression over a specific temporal window" (Spark's
/// `regression.LinearRegression`).
///
/// Model: NMS `total_duration_s ~ attempts + drops + throughput`.
pub fn t8_regression(
    fw: &dyn ExplorationFramework,
    start: EpochId,
    end: EpochId,
) -> (Option<LinearModel>, Seconds) {
    let span = obs::span("core.task.t8_regression");
    let mut samples: Vec<(Vec<f64>, f64)> = Vec::new();
    for snap in fw.scan(start, end) {
        for r in &snap.nms {
            let y = r.get(nms::TOTAL_DURATION_S).as_f64().unwrap_or(0.0);
            samples.push((
                vec![
                    r.get(nms::CALL_ATTEMPTS).as_f64().unwrap_or(0.0),
                    r.get(nms::CALL_DROPS).as_f64().unwrap_or(0.0),
                    r.get(nms::THROUGHPUT_KBPS).as_f64().unwrap_or(0.0) / 1000.0,
                ],
                y,
            ));
        }
    }
    // A whisper of ridge keeps quiet windows (all-zero drop columns)
    // solvable without meaningfully biasing the fit.
    let model = linreg_ridge(Dataset::parallelize(samples), 3, 1e-6);
    (model, span.finish_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::testutil::tiny_trace;
    use crate::framework::{RawFramework, SpateFramework};

    fn frameworks(n: usize) -> (RawFramework, SpateFramework, Vec<telco_trace::Snapshot>) {
        let (layout, snaps) = tiny_trace(n);
        let mut raw = RawFramework::in_memory(layout.clone());
        let mut spate = SpateFramework::in_memory(layout);
        for s in &snaps {
            raw.ingest(s);
            spate.ingest(s);
        }
        (raw, spate, snaps)
    }

    #[test]
    fn t1_returns_all_rows_of_the_epoch() {
        let (raw, spate, snaps) = frameworks(3);
        // Generated CDR all share the epoch's compact ts.
        let (rows_raw, _) = t1_equality(&raw, EpochId(1));
        let (rows_spate, _) = t1_equality(&spate, EpochId(1));
        assert_eq!(rows_raw.len(), snaps[1].cdr.len());
        assert_eq!(rows_raw, rows_spate, "frameworks must agree");
        // Missing epoch → empty.
        assert!(t1_equality(&raw, EpochId(77)).0.is_empty());
    }

    #[test]
    fn t2_concatenates_the_window() {
        let (raw, spate, snaps) = frameworks(4);
        let expected: usize = snaps[1..=3].iter().map(|s| s.cdr.len()).sum();
        let (rows_raw, _) = t2_range(&raw, EpochId(1), EpochId(3));
        let (rows_spate, _) = t2_range(&spate, EpochId(1), EpochId(3));
        assert_eq!(rows_raw.len(), expected);
        assert_eq!(rows_raw, rows_spate);
    }

    #[test]
    fn t3_aggregates_drop_counters() {
        let (raw, spate, snaps) = frameworks(3);
        let (agg_raw, _) = t3_aggregate(&raw, EpochId(0), EpochId(2));
        let (agg_spate, _) = t3_aggregate(&spate, EpochId(0), EpochId(2));
        assert_eq!(agg_raw.drops_per_cell, agg_spate.drops_per_cell);
        // Cross-check the total against a direct count.
        let direct: i64 = snaps
            .iter()
            .flat_map(|s| s.nms.iter())
            .filter_map(|r| r.get(nms::CALL_DROPS).as_i64())
            .sum();
        let total: i64 = agg_raw.drops_per_cell.values().sum();
        assert_eq!(total, direct);
        for rate in agg_raw.drop_rate_per_cluster.values() {
            assert!((0.0..=1.0).contains(rate), "rate {rate}");
        }
    }

    #[test]
    fn t4_finds_relocations_identically() {
        // Morning epochs carry enough traffic for repeat callers.
        let (raw, spate, _) = frameworks(20);
        let (r1, _) = t4_join(&raw, EpochId(12), EpochId(19));
        let (r2, _) = t4_join(&spate, EpochId(12), EpochId(19));
        assert_eq!(r1, r2);
        for rel in &r1 {
            assert_ne!(rel.from_cell, rel.to_cell);
            assert!(rel.from_epoch < rel.to_epoch);
        }
        // The mobility model (~10% movers) should produce some relocations.
        assert!(!r1.is_empty(), "expected at least one relocation");
    }

    #[test]
    fn t5_produces_k_anonymous_output() {
        let (raw, _, _) = frameworks(2);
        let k = 3;
        let (result, _) = t5_privacy(&raw, EpochId(0), EpochId(1), k);
        let table = result.expect("anonymization feasible");
        assert!(privacy::is_k_anonymous(
            &table.records,
            &[cdr::CALLER_ID, cdr::DURATION_S, cdr::CELL_ID],
            k
        ));
    }

    #[test]
    fn t6_statistics_match_between_frameworks() {
        let (raw, spate, _) = frameworks(3);
        let (s1, _) = t6_statistics(&raw, EpochId(0), EpochId(2));
        let (s2, _) = t6_statistics(&spate, EpochId(0), EpochId(2));
        let (s1, s2) = (s1.unwrap(), s2.unwrap());
        assert_eq!(s1.col_stats.count, s2.col_stats.count);
        assert_eq!(s1.col_stats.max, s2.col_stats.max);
        assert_eq!(s1.col_stats.mean, s2.col_stats.mean);
        assert!(s1.col_stats.count > 0);
        // upflux non-zeros only on DATA calls.
        assert!(s1.col_stats.non_zeros[1] < s1.col_stats.count);
        // upflux and downflux are strongly correlated by construction
        // (downflux is a multiple of upflux on DATA calls).
        assert!(s1.correlation[1][2] > 0.5, "{:?}", s1.correlation);
        assert_eq!(s1.correlation.len(), 4);
    }

    #[test]
    fn t7_clusters_nms_reports() {
        let (_, spate, _) = frameworks(3);
        let (model, _) = t7_clustering(&spate, EpochId(0), EpochId(2), 4);
        assert_eq!(model.centroids.len(), 4);
        assert!(model.inertia.is_finite());
        assert!(model.iterations >= 1);
    }

    #[test]
    fn t8_recovers_the_duration_attempts_relation() {
        let (_, spate, _) = frameworks(6);
        let (model, _) = t8_regression(&spate, EpochId(0), EpochId(5));
        let model = model.expect("regression feasible");
        // total_duration = attempts * U(20,120): slope on attempts ≈ 70.
        assert!(
            (30.0..120.0).contains(&model.weights[0]),
            "attempts weight {}",
            model.weights[0]
        );
        assert!(model.r2 > 0.5, "r2 {}", model.r2);
    }
}
