//! Send + Sync soundness of the query path under a worker pool.
//!
//! The serving tier (`spate-serve`) shares one `SpateFramework` behind an
//! `RwLock` and evaluates queries from many worker threads holding read
//! guards concurrently. That is only sound if the whole read path —
//! index probe, DFS block reads (page cache, fault plan, metrics),
//! decompression, projection — uses properly synchronized interior
//! mutability and no thread-hostile state. These tests pin that down:
//! a compile-time auto-trait audit, plus a racing smoke test asserting
//! concurrent queries return byte-identical answers to sequential ones.

use spate_core::framework::{ExplorationFramework, SpateFramework};
use spate_core::query::{Query, QueryResult};
use telco_trace::cells::BoundingBox;
use telco_trace::{TraceConfig, TraceGenerator};

/// Compile-time audit: the framework (and everything the query path
/// touches through it) must be shareable across worker threads. If a
/// future change sneaks an `Rc`/`RefCell`/raw pointer into the read
/// path, this stops compiling — a much earlier signal than a data race.
#[test]
fn framework_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpateFramework>();
    assert_send_sync::<spate_core::RawFramework>();
    assert_send_sync::<spate_core::ShahedFramework>();
    assert_send_sync::<Query>();
    assert_send_sync::<QueryResult>();
}

fn ingested(n: usize) -> SpateFramework {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 512.0));
    let layout = generator.layout().clone();
    let mut fw = SpateFramework::in_memory(layout);
    for s in (&mut generator).take(n) {
        fw.ingest(&s);
    }
    fw
}

fn row_signature(r: &QueryResult) -> (bool, usize) {
    (r.is_exact(), r.row_count())
}

#[test]
fn concurrent_queries_match_sequential_answers() {
    let fw = ingested(12);
    let queries: Vec<Query> = (0..8)
        .map(|i| {
            let lo = i % 4;
            let hi = lo + 2 + (i % 3) * 3;
            let bbox = if i % 2 == 0 {
                BoundingBox::everything()
            } else {
                BoundingBox::new(0.0, 0.0, 40_000.0, 40_000.0)
            };
            Query::new(&["upflux", "downflux", "call_type"], bbox).with_epoch_range(lo, hi.min(11))
        })
        .collect();

    let expected: Vec<(bool, usize)> = queries
        .iter()
        .map(|q| row_signature(&fw.query(q)))
        .collect();

    // 8 threads, each hammering the full query mix 4 times against the
    // same shared borrow. Any global-lock panic, poisoned state or
    // nondeterministic answer fails the run.
    std::thread::scope(|s| {
        let fw = &fw;
        let queries = &queries;
        let expected = &expected;
        let handles: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    for round in 0..4 {
                        // Stagger start points so threads collide on
                        // different epochs' page-cache entries.
                        for i in 0..queries.len() {
                            let k = (i + t + round) % queries.len();
                            let got = row_signature(&fw.query(&queries[k]));
                            assert_eq!(got, expected[k], "thread {t} query {k}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
}

#[test]
fn concurrent_scans_and_coverage_probes_are_safe() {
    use telco_trace::time::EpochId;
    let fw = ingested(10);
    let expected_rows: usize = fw
        .scan(EpochId(0), EpochId(9))
        .iter()
        .map(|s| s.cdr.len())
        .sum();
    std::thread::scope(|s| {
        let fw = &fw;
        let handles: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(move || {
                    let rows: usize = fw
                        .scan(EpochId(0), EpochId(9))
                        .iter()
                        .map(|s| s.cdr.len())
                        .sum();
                    assert_eq!(rows, expected_rows);
                    let cov = fw.probe_coverage(EpochId(0), EpochId(9));
                    assert_eq!(cov.served, 10);
                    assert_eq!(cov.unavailable, 0);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
}
