//! Semantic invariants of `Q(a, b, w)` across the SPATE stack: results
//! must be monotone in both the window and the box, summaries must agree
//! with exact counts, and the three frameworks must agree with each other.

use spate_core::framework::{ExplorationFramework, RawFramework, SpateFramework};
use spate_core::query::{Query, QueryResult};
use spate_core::ExplorerSession;
use telco_trace::cells::BoundingBox;
use telco_trace::time::EpochId;
use telco_trace::{Snapshot, TraceConfig, TraceGenerator};

fn fixtures(n: usize) -> (RawFramework, SpateFramework, Vec<Snapshot>) {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    let mut raw = RawFramework::in_memory(layout.clone());
    let mut spate = SpateFramework::in_memory(layout);
    let snaps: Vec<Snapshot> = (&mut generator).take(n).collect();
    for s in &snaps {
        raw.ingest(s);
        spate.ingest(s);
    }
    (raw, spate, snaps)
}

fn rows(fw: &dyn ExplorationFramework, q: &Query) -> usize {
    match fw.query(q) {
        QueryResult::Exact(e) => e.cdr.rows.len(),
        other => panic!("expected exact result, got {other:?}"),
    }
}

#[test]
fn row_counts_are_monotone_in_the_window() {
    let (raw, spate, _) = fixtures(10);
    let bbox = BoundingBox::everything();
    let mut prev = 0usize;
    for end in 0..10u32 {
        let q = Query::new(&["upflux"], bbox).with_epoch_range(0, end);
        let n_raw = rows(&raw, &q);
        let n_spate = rows(&spate, &q);
        assert_eq!(n_raw, n_spate, "frameworks agree at end={end}");
        assert!(n_spate >= prev, "wider window can't lose rows");
        prev = n_spate;
    }
}

#[test]
fn row_counts_are_monotone_in_the_box() {
    let (_, spate, _) = fixtures(6);
    let side = telco_trace::cells::REGION_SIDE_M;
    let mut prev = 0usize;
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let bbox = BoundingBox::new(0.0, 0.0, side * frac, side * frac);
        let q = Query::new(&["upflux"], bbox).with_epoch_range(0, 5);
        let n = rows(&spate, &q);
        assert!(n >= prev, "larger box can't lose rows: {n} < {prev}");
        prev = n;
    }
    // The full box equals an unfiltered scan.
    let all: usize = spate
        .scan(EpochId(0), EpochId(5))
        .iter()
        .map(|s| s.cdr.len())
        .sum();
    assert_eq!(prev, all);
}

#[test]
fn summary_counters_match_exact_row_counts() {
    // Before decay, a day node's highlight counters must equal what a full
    // scan of that day returns — the OLAP cube is consistent with its base.
    let (_, spate, snaps) = fixtures(12);
    let day = &spate.index().years()[0].months[0].days[0];
    let direct_cdr: u64 = snaps.iter().map(|s| s.cdr.len() as u64).sum();
    let direct_nms: u64 = snaps.iter().map(|s| s.nms.len() as u64).sum();
    assert_eq!(day.highlights.cdr_records, direct_cdr);
    assert_eq!(day.highlights.nms_records, direct_nms);

    // Per-cell drill-down agrees with a manual group-by.
    let mut per_cell: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for s in &snaps {
        for r in &s.cdr {
            let cell = r.get(telco_trace::schema::cdr::CELL_ID).as_i64().unwrap() as u32;
            *per_cell.entry(cell).or_insert(0) += 1;
        }
    }
    for (cell, count) in per_cell {
        assert_eq!(
            day.highlights.per_cell[&cell].cdr_records, count,
            "cell {cell}"
        );
    }
}

#[test]
fn projection_column_order_follows_the_query() {
    let (_, spate, _) = fixtures(2);
    let q = Query::new(
        &["downflux", "caller_id", "upflux"],
        BoundingBox::everything(),
    )
    .with_epoch_range(0, 1);
    let QueryResult::Exact(e) = spate.query(&q) else {
        panic!("expected exact");
    };
    assert_eq!(e.cdr.column_names, vec!["downflux", "caller_id", "upflux"]);
    for row in &e.cdr.rows {
        assert_eq!(row.len(), 3);
    }
}

#[test]
fn session_and_direct_paths_agree_under_mixed_zooming() {
    let (_, spate, _) = fixtures(10);
    let mut session = ExplorerSession::new();
    let side = telco_trace::cells::REGION_SIDE_M;
    // A zoom sequence: broad → narrow time → narrow space → re-broaden.
    let queries = [
        Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 9),
        Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(3, 6),
        Query::new(
            &["upflux"],
            BoundingBox::new(0.0, 0.0, side / 2.0, side / 2.0),
        )
        .with_epoch_range(4, 5),
        Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, 9),
    ];
    for q in &queries {
        let via_session = match session.explore(&spate, q) {
            QueryResult::Exact(e) => e.cdr.rows.len(),
            other => panic!("{other:?}"),
        };
        assert_eq!(via_session, rows(&spate, q));
    }
    let stats = session.stats();
    assert!(stats.cache_hits >= 2, "{stats:?}");
}

#[test]
fn empty_boxes_and_windows_return_empty_exact_results() {
    let (_, spate, _) = fixtures(3);
    // A zero-area box in an empty corner.
    let q = Query::new(&["upflux"], BoundingBox::new(0.0, 0.0, 0.0, 0.0)).with_epoch_range(0, 2);
    let QueryResult::Exact(e) = spate.query(&q) else {
        panic!("expected exact");
    };
    // Only cells exactly at the origin could match; certainly far fewer
    // rows than the full region, usually zero.
    assert!(e.cdr.rows.len() <= 3);
}
