//! Long-horizon index tests: the year → month → day → epoch structure of
//! paper Fig. 5 over multiple years of ingestion, plus multi-year decay.
//!
//! Snapshots here are empty (structure is what's under test), so driving
//! hundreds of days stays fast.

use spate_core::index::highlights::HighlightConfig;
use spate_core::index::{Covering, TemporalIndex};
use spate_core::storage::{SnapshotStore, StoredSnapshot};
use spate_core::{DecayPolicy, Highlights};
use telco_trace::snapshot::Snapshot;
use telco_trace::time::{days_in_month, EpochId, EPOCHS_PER_DAY};

fn drive(index: &mut TemporalIndex, epochs: u32) {
    for e in 0..epochs {
        let snap = Snapshot::new(EpochId(e), vec![], vec![]);
        let stored = StoredSnapshot {
            epoch: snap.epoch,
            path: format!("/x/{e}"),
            raw_bytes: 10,
            stored_bytes: 1,
        };
        index.incremence(&snap, &stored);
    }
}

#[test]
fn two_years_of_structure_match_the_civil_calendar() {
    let mut index = TemporalIndex::new(HighlightConfig::default());
    // Trace starts 2016-01-18; 750 days runs into 2018.
    drive(&mut index, 750 * EPOCHS_PER_DAY);

    let years = index.years();
    assert_eq!(
        years.iter().map(|y| y.year).collect::<Vec<_>>(),
        vec![2016, 2017, 2018]
    );

    // 2017 is fully covered: 12 months, each with the right day count.
    let y2017 = &years[1];
    assert_eq!(y2017.months.len(), 12);
    for m in &y2017.months {
        assert_eq!(
            m.days.len() as u32,
            days_in_month(2017, m.month),
            "month {}",
            m.month
        );
        for d in &m.days {
            assert_eq!(d.leaves.len() as u32, EPOCHS_PER_DAY);
        }
    }
    // 2016 starts mid-January: January has only 14 days (18th..31st).
    let jan16 = &years[0].months[0];
    assert_eq!(jan16.month, 1);
    assert_eq!(jan16.days.len(), 14);

    assert_eq!(index.present_leaves() as u32, 750 * EPOCHS_PER_DAY);
}

#[test]
fn window_covering_escalates_day_month_year() {
    let mut index = TemporalIndex::new(HighlightConfig::default());
    drive(&mut index, 400 * EPOCHS_PER_DAY);
    let last = index.last_epoch().unwrap();

    // Exact while everything is present.
    assert!(matches!(
        index.find_covering(EpochId(0), last),
        Covering::Exact(_)
    ));

    // Decay everything older than 30 days at full resolution, day
    // highlights 90 days, months 200 days.
    let store = SnapshotStore::new(dfs::Dfs::in_memory(), std::sync::Arc::new(codecs::Identity));
    let policy = DecayPolicy {
        full_resolution_days: 30,
        day_highlight_days: 90,
        month_highlight_days: 200,
        year_highlight_days: 2000,
    };
    let report = spate_core::index::decay::decay(&mut index, last, &policy, &store).unwrap();
    assert!(report.leaves_evicted > 300 * EPOCHS_PER_DAY as usize);
    assert!(report.day_highlights_dropped > 250);
    assert!(report.month_highlights_dropped >= 5);

    // A one-day window inside the fresh horizon: exact.
    let fresh = EpochId(395 * EPOCHS_PER_DAY);
    assert!(matches!(
        index.find_covering(fresh, EpochId(fresh.0 + EPOCHS_PER_DAY - 1)),
        Covering::Exact(_)
    ));

    // Age 31..90 days: leaves gone but day highlights retained → day node.
    let aged = EpochId(350 * EPOCHS_PER_DAY);
    match index.find_covering(aged, EpochId(aged.0 + 5)) {
        Covering::Summary { resolution, .. } => assert_eq!(resolution.label(), "day"),
        other => panic!("expected day summary at age ~50d, got {other:?}"),
    }

    // Age 90..200 days: day highlights decayed → month node.
    let mid_age = EpochId(250 * EPOCHS_PER_DAY);
    match index.find_covering(mid_age, EpochId(mid_age.0 + 5)) {
        Covering::Summary { resolution, .. } => assert_eq!(resolution.label(), "month"),
        other => panic!("expected month summary at age ~150d, got {other:?}"),
    }

    // Older than 200 days: month highlights gone too → year summary.
    let old = EpochId(30 * EPOCHS_PER_DAY);
    match index.find_covering(old, EpochId(old.0 + 5)) {
        Covering::Summary { resolution, .. } => assert_eq!(resolution.label(), "year"),
        other => panic!("expected year summary for old window, got {other:?}"),
    }
}

#[test]
fn multi_year_decay_prunes_whole_years() {
    let mut index = TemporalIndex::new(HighlightConfig::default());
    drive(&mut index, 800 * EPOCHS_PER_DAY); // 2016..2018
    let store = SnapshotStore::new(dfs::Dfs::in_memory(), std::sync::Arc::new(codecs::Identity));
    let policy = DecayPolicy {
        full_resolution_days: 10,
        day_highlight_days: 20,
        month_highlight_days: 30,
        year_highlight_days: 400,
    };
    let last = index.last_epoch().unwrap();
    let report = spate_core::index::decay::decay(&mut index, last, &policy, &store).unwrap();
    // 800 days in: everything of 2016 is older than 400 days → pruned.
    assert_eq!(report.years_pruned, 1);
    assert_eq!(
        index.years().iter().map(|y| y.year).collect::<Vec<_>>(),
        vec![2017, 2018]
    );
    // Root highlights still describe all data ever ingested (the schema
    // never decays; the root summary is the warehouse's memory).
    assert_eq!(index.root_highlights().cdr_records, 0); // empty snapshots
    assert!(index.root_highlights().last_epoch >= EpochId(799 * EPOCHS_PER_DAY));
}

#[test]
fn persistence_round_trips_a_long_horizon() {
    let mut index = TemporalIndex::new(HighlightConfig::default());
    drive(&mut index, 500 * EPOCHS_PER_DAY);
    let image = spate_core::index::persist::to_bytes(&index);
    let restored = spate_core::index::persist::from_bytes(&image).unwrap();
    assert_eq!(restored.years().len(), index.years().len());
    assert_eq!(restored.present_leaves(), index.present_leaves());
    assert_eq!(restored.last_epoch(), index.last_epoch());
}

#[test]
fn highlights_merge_is_associative_along_the_path() {
    // Merging day summaries into a month must equal merging the raw epoch
    // summaries directly — exercised over synthetic highlight objects.
    let config = HighlightConfig::default();
    let n = config.categorical_attrs.len();
    let mk = |e: u32| {
        let mut h = Highlights::empty(EpochId(e), n);
        h.cdr_records = u64::from(e) + 1;
        h
    };
    let mut day_a = Highlights::empty(EpochId(0), n);
    day_a.merge(&mk(0));
    day_a.merge(&mk(1));
    let mut day_b = Highlights::empty(EpochId(2), n);
    day_b.merge(&mk(2));
    let mut month_via_days = Highlights::empty(EpochId(0), n);
    month_via_days.merge(&day_a);
    month_via_days.merge(&day_b);

    let mut month_direct = Highlights::empty(EpochId(0), n);
    for e in 0..3 {
        month_direct.merge(&mk(e));
    }
    assert_eq!(month_via_days.cdr_records, month_direct.cdr_records);
    assert_eq!(month_via_days.first_epoch, month_direct.first_epoch);
    assert_eq!(month_via_days.last_epoch, month_direct.last_epoch);
}
