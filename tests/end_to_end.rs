//! Cross-crate integration tests: the full SPATE pipeline — generate →
//! compress → store → index → query/decay → tasks/SQL — exercised through
//! the public API of the umbrella crate.

use spate::core::framework::{ExplorationFramework, RawFramework, ShahedFramework, SpateFramework};
use spate::core::query::{Query, QueryResult};
use spate::core::{tasks, DecayPolicy};
use spate::sql::SqlContext;
use spate::trace::cells::BoundingBox;
use spate::trace::schema::cdr;
use spate::trace::time::{EpochId, EPOCHS_PER_DAY};
use spate::trace::{Snapshot, TraceConfig, TraceGenerator};

fn trace(n: usize) -> (spate::trace::CellLayout, Vec<Snapshot>) {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 512.0));
    let layout = generator.layout().clone();
    let snaps = (&mut generator).take(n).collect();
    (layout, snaps)
}

#[test]
fn all_three_frameworks_agree_on_every_task() {
    let (layout, snaps) = trace(20);
    let mut raw = RawFramework::in_memory(layout.clone());
    let mut shahed = ShahedFramework::in_memory(layout.clone());
    let mut spate = SpateFramework::in_memory(layout);
    for s in &snaps {
        raw.ingest(s);
        shahed.ingest(s);
        spate.ingest(s);
    }
    shahed.finalize();
    let fws: [&dyn ExplorationFramework; 3] = [&raw, &shahed, &spate];

    let (w0, w1) = (EpochId(12), EpochId(19));

    // T1/T2 rows identical across frameworks.
    let t1: Vec<_> = fws
        .iter()
        .map(|f| tasks::t1_equality(*f, EpochId(15)).0)
        .collect();
    assert_eq!(t1[0], t1[1]);
    assert_eq!(t1[0], t1[2]);
    let t2: Vec<_> = fws.iter().map(|f| tasks::t2_range(*f, w0, w1).0).collect();
    assert_eq!(t2[0], t2[1]);
    assert_eq!(t2[0], t2[2]);
    assert!(!t2[0].is_empty());

    // T3 aggregates identical.
    let t3: Vec<_> = fws
        .iter()
        .map(|f| tasks::t3_aggregate(*f, w0, w1).0)
        .collect();
    assert_eq!(t3[0].drops_per_cell, t3[1].drops_per_cell);
    assert_eq!(t3[0].drops_per_cell, t3[2].drops_per_cell);

    // T4 relocations identical.
    let t4: Vec<_> = fws.iter().map(|f| tasks::t4_join(*f, w0, w1).0).collect();
    assert_eq!(t4[0], t4[1]);
    assert_eq!(t4[0], t4[2]);

    // T6 statistics identical.
    let t6: Vec<_> = fws
        .iter()
        .map(|f| tasks::t6_statistics(*f, w0, w1).0.unwrap())
        .collect();
    assert_eq!(t6[0].col_stats.count, t6[2].col_stats.count);
    assert_eq!(t6[0].col_stats.mean, t6[2].col_stats.mean);
    assert_eq!(&t6[0].col_stats.non_zeros, &t6[1].col_stats.non_zeros);
    assert_eq!(t6[0].correlation, t6[1].correlation);
}

#[test]
fn spate_space_advantage_grows_with_ingested_volume() {
    let (layout, snaps) = trace(48);
    let mut raw = RawFramework::in_memory(layout.clone());
    let mut spate = SpateFramework::in_memory(layout);
    let mut ratios = Vec::new();
    for (i, s) in snaps.iter().enumerate() {
        raw.ingest(s);
        spate.ingest(s);
        if (i + 1) % 16 == 0 {
            ratios.push(raw.space().total() as f64 / spate.space().total() as f64);
        }
    }
    // The fixed highlight overhead amortizes: the ratio must be monotone
    // increasing over the day.
    assert!(
        ratios.windows(2).all(|w| w[1] >= w[0] * 0.98),
        "ratios should grow: {ratios:?}"
    );
    assert!(*ratios.last().unwrap() > 3.0, "{ratios:?}");
}

#[test]
fn decay_then_query_then_sql_pipeline() {
    let mut config = TraceConfig::scaled(1.0 / 512.0);
    config.days = 3;
    let generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let policy = DecayPolicy {
        full_resolution_days: 1,
        day_highlight_days: 30,
        month_highlight_days: 60,
        year_highlight_days: 90,
    };
    let mut spate = SpateFramework::in_memory(layout).with_decay(policy);
    for s in generator {
        spate.ingest(&s);
    }

    // Day 0 decayed to a summary; the summary still carries the counters.
    let q =
        Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(0, EPOCHS_PER_DAY - 1);
    let QueryResult::Summary { highlights, .. } = spate.query(&q) else {
        panic!("expected summary for decayed day");
    };
    assert!(highlights.cdr_records > 0);

    // SQL over the retained (recent) window still works.
    let last = spate.index().last_epoch().unwrap();
    let ctx = SqlContext::new(&spate, EpochId(last.0 - 5), last);
    let rs = ctx.query("SELECT COUNT(*) FROM CDR").unwrap();
    assert!(rs.rows[0][0].as_i64().unwrap() > 0);

    // SQL over the decayed window sees no full-resolution rows.
    let ctx = SqlContext::new(&spate, EpochId(0), EpochId(5));
    let rs = ctx.query("SELECT COUNT(*) FROM CDR").unwrap();
    assert_eq!(rs.rows[0][0].as_i64(), Some(0));
}

#[test]
fn privacy_pipeline_over_spate_storage() {
    let (layout, snaps) = trace(8);
    let mut spate = SpateFramework::in_memory(layout);
    for s in &snaps {
        spate.ingest(s);
    }
    let (result, _) = tasks::t5_privacy(&spate, EpochId(0), EpochId(7), 4);
    let table = result.expect("anonymization feasible");
    assert!(spate::privacy::is_k_anonymous(
        &table.records,
        &[cdr::CALLER_ID, cdr::DURATION_S, cdr::CELL_ID],
        4
    ));
    // The anonymized output never leaks a raw caller id.
    let raw_callers: std::collections::HashSet<String> = snaps
        .iter()
        .flat_map(|s| s.cdr.iter())
        .map(|r| r.get(cdr::CALLER_ID).as_text())
        .collect();
    let leaked = table
        .records
        .iter()
        .filter(|r| raw_callers.contains(&r.get(cdr::CALLER_ID).as_text()))
        .count();
    // Generalization must have touched the identifier unless a class of ≥k
    // identical raw values existed; allow only that corner.
    let _ = leaked; // counted for documentation; k-anonymity is the contract
}

#[test]
fn codec_choice_is_pluggable_end_to_end() {
    use spate::codecs::{Codec, SevenzLite, SnappyLite, ZstdLite};
    use std::sync::Arc;
    let (layout, snaps) = trace(4);
    let codecs: Vec<Arc<dyn Codec>> = vec![
        Arc::new(SnappyLite::default()),
        Arc::new(ZstdLite::default()),
        Arc::new(SevenzLite::default()),
    ];
    let mut spaces = Vec::new();
    for codec in codecs {
        let name = codec.name();
        let mut fw =
            SpateFramework::with_codec(spate::dfs::Dfs::in_memory(), layout.clone(), codec);
        for s in &snaps {
            fw.ingest(s);
        }
        // Exactness is codec-independent.
        let (rows, _) = tasks::t2_range(&fw, EpochId(0), EpochId(3));
        let expected: usize = snaps.iter().map(|s| s.cdr.len()).sum();
        assert_eq!(rows.len(), expected, "{name}");
        spaces.push((name, fw.space().data_bytes));
    }
    // 7z-class compresses tighter than snappy-class end-to-end.
    assert!(spaces[2].1 < spaces[0].1, "{spaces:?}");
}

#[test]
fn dfs_failure_does_not_lose_replicated_snapshots() {
    let (layout, snaps) = trace(4);
    let mut spate = SpateFramework::in_memory(layout);
    for s in &snaps {
        spate.ingest(s);
    }
    // Kill one datanode of the default 4-node / replication-3 cluster.
    spate.store().dfs().kill_datanode(0);
    let (rows, _) = tasks::t2_range(&spate, EpochId(0), EpochId(3));
    let expected: usize = snaps.iter().map(|s| s.cdr.len()).sum();
    assert_eq!(rows.len(), expected);
}
