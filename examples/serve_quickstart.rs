//! Serving-tier quickstart: start a [`Server`] over a SPATE warehouse,
//! connect a few clients through the binary frame protocol, and watch
//! the shared epoch cache stay coherent while ingestion and decay run
//! mid-flight.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use spate::core::framework::{ExplorationFramework, SpateFramework};
use spate::core::DecayPolicy;
use spate::serve::{Reply, ServeConfig, Server};
use spate::trace::cells::BoundingBox;
use spate::trace::time::EPOCHS_PER_DAY;
use spate::trace::{Snapshot, TraceConfig, TraceGenerator};

fn main() {
    let day = EPOCHS_PER_DAY;
    let mut config = TraceConfig::scaled(1.0 / 1024.0);
    config.days = 3;
    let mut generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let snaps: Vec<Snapshot> = generator.by_ref().take(2 * day as usize + 1).collect();

    // Keep one day at full resolution; older days decay to highlights.
    let mut fw = SpateFramework::in_memory(layout).with_decay(DecayPolicy {
        full_resolution_days: 1,
        ..DecayPolicy::paper_default()
    });
    println!("-- Ingesting two days ({} snapshots) --", 2 * day);
    for s in &snaps[..2 * day as usize] {
        fw.ingest(s);
    }

    let server = Server::start(fw, ServeConfig::default());

    // An interactive exploration: Q(a, b, w) over the morning of day 0.
    let mut analyst = server.connect();
    let core_box = BoundingBox::new(25_000.0, 25_000.0, 55_000.0, 55_000.0);
    match analyst
        .explore(&["upflux", "downflux"], core_box, (12, 17))
        .unwrap()
    {
        Reply::Rows {
            rows, total_rows, ..
        } => println!(
            "analyst: {} CDR rows (+{} NMS) from epochs 12-17",
            rows[0].len(),
            total_rows as usize - rows[0].len()
        ),
        other => println!("analyst: unexpected {other:?}"),
    }

    // A dashboard running SPATE-SQL over the same (now cached) epochs.
    let mut dashboard = server.connect();
    match dashboard.sql((12, 17), "SELECT COUNT(*) FROM CDR").unwrap() {
        Reply::Rows { rows, .. } => println!("dashboard: COUNT(*) = {:?}", rows[0][0][0]),
        other => println!("dashboard: unexpected {other:?}"),
    }
    let warm = server.cache_stats();
    println!(
        "cache after both clients: {} hits / {} misses (shared across connections)",
        warm.hits, warm.misses
    );

    // Day 2's first snapshot arrives: ingest runs the decay pass, day 0
    // collapses to highlights, and the cache drops its stale epochs
    // before any client can read them.
    println!("\n-- Snapshot {} arrives; day 0 decays --", 2 * day);
    server.ingest(&snaps[2 * day as usize]);
    println!(
        "store version {} | cache invalidations {}",
        server.version(),
        server.cache_stats().invalidations
    );

    match analyst
        .explore(&["upflux"], BoundingBox::everything(), (12, 17))
        .unwrap()
    {
        Reply::Summary {
            resolution,
            cdr_records,
            cells,
            ..
        } => println!(
            "analyst again: day-0 window now answers from the {resolution} highlight \
             ({cdr_records} CDR records over {cells} cells) — no stale rows"
        ),
        other => println!("analyst: unexpected {other:?}"),
    }

    analyst.close();
    dashboard.close();
    let stats = server.shutdown();
    println!(
        "\nserved {} queries, streamed {} rows, {} protocol errors",
        stats.queries, stats.rows_streamed, stats.protocol_errors
    );
}
