//! SPATE-SQL session: the declarative interface of the application layer,
//! running the paper's task queries (T1–T4 style) over the compressed
//! store and printing Hue-style result tables.
//!
//! Run with: `cargo run --release --example sql_explorer`

use spate::core::framework::{ExplorationFramework, SpateFramework};
use spate::sql::SqlContext;
use spate::trace::time::EpochId;
use spate::trace::{TraceConfig, TraceGenerator};

fn main() {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    let mut spate = SpateFramework::in_memory(layout);
    println!("Ingesting 20 snapshots...");
    for snapshot in generator.by_ref().take(20) {
        spate.ingest(&snapshot);
    }

    let ctx = SqlContext::new(&spate, EpochId(12), EpochId(19));
    let ts = EpochId(15).civil().compact();

    let statements = vec![
        (
            "T1 equality: flux volumes of one snapshot",
            format!("SELECT upflux, downflux FROM CDR WHERE ts_start = '{ts}' LIMIT 5"),
        ),
        (
            "T2 range: data sessions over the window",
            "SELECT record_id, caller_id, downflux FROM CDR \
             WHERE call_type = 'DATA' ORDER BY downflux DESC LIMIT 5"
                .to_string(),
        ),
        (
            "T3 aggregate: drop counters per cell",
            "SELECT cell_id, SUM(call_drops) AS drops, SUM(call_attempts) AS attempts \
             FROM NMS GROUP BY cell_id ORDER BY 2 DESC LIMIT 5"
                .to_string(),
        ),
        (
            "T4 join: subscribers seen at two different towers",
            "SELECT a.caller_id, a.cell_id, b.cell_id FROM CDR a, CDR b \
             WHERE a.caller_id = b.caller_id AND a.cell_id != b.cell_id LIMIT 5"
                .to_string(),
        ),
        (
            "Inventory join: worst LTE cells by drops",
            "SELECT n.cell_id, c.site_name, SUM(n.call_drops) AS drops \
             FROM NMS n, CELL c WHERE n.cell_id = c.cell_id AND c.tech = 'LTE' \
             GROUP BY n.cell_id, c.site_name ORDER BY 3 DESC LIMIT 5"
                .to_string(),
        ),
        (
            "Nested query: cells that ever dropped a call",
            "SELECT cell_id, tech FROM CELL WHERE cell_id IN \
             (SELECT cell_id FROM NMS WHERE call_drops > 2) LIMIT 5"
                .to_string(),
        ),
        (
            "HAVING: only persistently busy cells",
            "SELECT cell_id, SUM(call_attempts) AS attempts FROM NMS \
             GROUP BY cell_id HAVING SUM(call_attempts) > 100 \
             ORDER BY 2 DESC LIMIT 5"
                .to_string(),
        ),
        (
            "LIKE and BETWEEN: mid-length voice calls on 3G cells",
            "SELECT record_id, duration_s, tech FROM CDR \
             WHERE call_type LIKE 'VO%' AND duration_s BETWEEN 60 AND 180 \
             AND tech LIKE '_G' LIMIT 5"
                .to_string(),
        ),
    ];

    for (title, sql) in statements {
        println!("\n=== {title} ===");
        println!("spate-sql> {sql}");
        match ctx.query(&sql) {
            Ok(rs) => {
                print!("{}", rs.to_text());
                println!("({} rows)", rs.len());
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
}
