//! SPATE-UI substitute: a terminal spatio-temporal dashboard.
//!
//! The paper's SPATE-UI overlays network statistics on Google Maps and
//! supports "playback highlights in fast-forward". This example renders the
//! same query path — `Q(a, b, w)` over the compressed SPATE structure —
//! as (i) an ASCII drop-rate heatmap of the coverage region, (ii) the
//! θ-threshold highlight events of the day, and (iii) an epoch-by-epoch
//! traffic playback.
//!
//! Run with: `cargo run --release --example telco_dashboard`

use spate::core::framework::{ExplorationFramework, SpateFramework};
use spate::core::index::highlights::Resolution;
use spate::trace::cells::{BoundingBox, REGION_SIDE_M};
use spate::trace::time::EpochId;
use spate::trace::{TraceConfig, TraceGenerator};

const GRID: usize = 16;

fn main() {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    let mut spate = SpateFramework::in_memory(layout.clone());

    // One full day of snapshots.
    println!("Ingesting one day (48 snapshots)...");
    for snapshot in generator.by_ref().take(48) {
        spate.ingest(&snapshot);
    }

    // (i) Drop-rate heatmap: the day node's per-cell summaries, bucketed on
    // a coarse spatial grid — what the coverage-overlay view renders.
    let day = &spate.index().years()[0].months[0].days[0];
    let mut grid = vec![vec![(0.0f64, 0.0f64); GRID]; GRID]; // (drops, attempts)
    for (cell_id, summary) in &day.highlights.per_cell {
        let cell = layout.get(*cell_id);
        let gx = ((cell.x_m / REGION_SIDE_M) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        let gy = ((cell.y_m / REGION_SIDE_M) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        grid[gy][gx].0 += summary.drops.sum;
        grid[gy][gx].1 += summary.attempts.sum;
    }
    println!(
        "\nDrop-call rate heatmap ({}x{} grid over ~6000 km²):",
        GRID, GRID
    );
    println!("  legend: '.' no traffic, 0-9 = drop rate in 0.5% steps\n");
    for row in grid.iter().rev() {
        let mut line = String::from("  ");
        for &(drops, attempts) in row {
            if attempts <= 0.0 {
                line.push('.');
            } else {
                let rate = drops / attempts;
                let bucket = ((rate / 0.005).round() as i64).clamp(0, 9);
                line.push(char::from_digit(bucket as u32, 10).unwrap());
            }
            line.push(' ');
        }
        println!("{line}");
    }

    // (ii) The day's highlight events: rare values under θ_day.
    let config = spate.index().config().clone();
    let events = day.highlights.events(&config, Resolution::Day);
    println!(
        "\nHighlights of {} (θ_day = {}):",
        EpochId(0).civil().compact(),
        config.theta_day
    );
    if events.is_empty() {
        println!("  (no attribute value fell under the θ threshold)");
    }
    for e in events.iter().take(8) {
        println!(
            "  {}={}  seen {} times ({:.3}% of records)",
            e.attribute,
            e.value,
            e.count,
            e.share * 100.0
        );
    }

    // (iii) Playback: per-epoch traffic curve in the busiest quadrant.
    println!("\nPlayback: CDR volume per epoch, urban core (fast-forward):");
    let core_box = BoundingBox::new(
        REGION_SIDE_M * 0.25,
        REGION_SIDE_M * 0.25,
        REGION_SIDE_M * 0.75,
        REGION_SIDE_M * 0.75,
    );
    let core_cells: std::collections::HashSet<u32> =
        layout.cells_in(&core_box).into_iter().collect();
    for e in (0..48u32).step_by(2) {
        let Some(snap) = spate.load_epoch(EpochId(e)) else {
            continue;
        };
        let count = snap
            .cdr
            .iter()
            .filter(|r| {
                r.get(spate::trace::schema::cdr::CELL_ID)
                    .as_i64()
                    .is_some_and(|c| core_cells.contains(&(c as u32)))
            })
            .count();
        let civil = EpochId(e).civil();
        println!(
            "  {:02}:{:02} |{}",
            civil.hour,
            civil.minute,
            "#".repeat(count.min(70))
        );
    }
}
