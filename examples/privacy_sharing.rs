//! Privacy-aware data sharing (task T5): k-anonymize a window of CDR data
//! before handing it to a smart-city consumer, at several strengths of k.
//!
//! Run with: `cargo run --release --example privacy_sharing`

use spate::core::framework::{ExplorationFramework, SpateFramework};
use spate::core::tasks;
use spate::privacy::is_k_anonymous;
use spate::trace::schema::cdr;
use spate::trace::time::EpochId;
use spate::trace::{TraceConfig, TraceGenerator};

fn main() {
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    let mut spate = SpateFramework::in_memory(layout);
    for snapshot in generator.by_ref().take(24) {
        spate.ingest(&snapshot);
    }

    let window = (EpochId(16), EpochId(23));
    let originals = spate
        .scan(window.0, window.1)
        .iter()
        .map(|s| s.cdr.len())
        .sum::<usize>();
    println!(
        "Sharing window {}..{} — {originals} CDR records",
        window.0 .0, window.1 .0
    );
    println!("\nQuasi-identifiers: caller MSISDN, call duration, cell id\n");
    println!("  k | suppressed | QI generalization levels | info loss | verified");
    println!("----+------------+--------------------------+-----------+---------");

    for k in [2usize, 5, 10, 25] {
        let (result, secs) = tasks::t5_privacy(&spate, window.0, window.1, k);
        match result {
            Some(table) => {
                let ok = is_k_anonymous(
                    &table.records,
                    &[cdr::CALLER_ID, cdr::DURATION_S, cdr::CELL_ID],
                    k,
                );
                println!(
                    "{:>3} | {:>10} | {:<24} | {:>8.2}% | {} ({secs:.3}s)",
                    k,
                    table.suppressed,
                    format!("{:?}", table.levels),
                    table.loss * 100.0,
                    if ok { "k-anonymous" } else { "FAILED" },
                );
            }
            None => println!("{k:>3} | anonymization infeasible within the suppression budget"),
        }
    }

    // Show what a shared record looks like before and after.
    let (result, _) = tasks::t5_privacy(&spate, window.0, window.1, 10);
    if let Some(table) = result {
        if let Some(rec) = table.records.first() {
            println!("\nSample anonymized record (k=10):");
            println!(
                "  caller_id={} duration_s={} cell_id={}",
                rec.get(cdr::CALLER_ID).as_text(),
                rec.get(cdr::DURATION_S).as_text(),
                rec.get(cdr::CELL_ID).as_text()
            );
        }
        let raw = spate.scan(window.0, window.1);
        if let Some(orig) = raw.first().and_then(|s| s.cdr.first()) {
            println!("Corresponding raw attributes would have been:");
            println!(
                "  caller_id={} duration_s={} cell_id={}",
                orig.get(cdr::CALLER_ID).as_text(),
                orig.get(cdr::DURATION_S).as_text(),
                orig.get(cdr::CELL_ID).as_text()
            );
        }
    }
}
