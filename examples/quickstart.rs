//! Quickstart: ingest a morning of telco snapshots into SPATE, explore the
//! data with `Q(a, b, w)` queries, and compare storage against the RAW
//! baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use spate::core::framework::{ExplorationFramework, RawFramework, SpateFramework};
use spate::core::query::{Query, QueryResult};
use spate::core::tasks;
use spate::trace::cells::BoundingBox;
use spate::trace::time::EpochId;
use spate::trace::{TraceConfig, TraceGenerator};

fn main() {
    // A deterministic synthetic trace at 1/256 of the paper's volume.
    let mut generator = TraceGenerator::new(TraceConfig::scaled(1.0 / 256.0));
    let layout = generator.layout().clone();
    println!(
        "Trace: {} cells on {} antennas, {} subscribers",
        generator.config().n_cells,
        generator.config().n_antennas,
        generator.config().n_users
    );

    let mut spate = SpateFramework::in_memory(layout.clone());
    let mut raw = RawFramework::in_memory(layout);

    // Ingest the first 16 epochs (midnight to 08:00) into both frameworks.
    println!("\n-- Ingestion (snapshots arrive every 30 minutes) --");
    let mut total_ingest = 0.0;
    for snapshot in generator.by_ref().take(16) {
        let stats = spate.ingest(&snapshot);
        raw.ingest(&snapshot);
        total_ingest += stats.seconds;
        if snapshot.epoch.0 % 4 == 0 {
            println!(
                "epoch {:>2} ({}): {:>5} records, {:>7} B raw -> {:>6} B stored ({:.1}x)",
                snapshot.epoch.0,
                snapshot.epoch.civil().compact(),
                snapshot.total_records(),
                stats.raw_bytes,
                stats.stored_bytes,
                stats.raw_bytes as f64 / stats.stored_bytes as f64
            );
        }
    }
    println!("total SPATE ingestion time: {total_ingest:.3}s");

    // Storage comparison.
    let (s, r) = (spate.space(), raw.space());
    println!("\n-- Space --");
    println!("RAW  : {:>9} B data", r.data_bytes);
    println!(
        "SPATE: {:>9} B data + {:>7} B index  ({:.1}x smaller)",
        s.data_bytes,
        s.index_bytes,
        r.total() as f64 / s.total() as f64
    );

    // A data exploration query: flux volumes in the city core, 06:00-08:00.
    println!("\n-- Q(a, b, w): upflux/downflux in the urban core, epochs 12-15 --");
    let core_box = BoundingBox::new(25_000.0, 25_000.0, 55_000.0, 55_000.0);
    let q = Query::new(&["upflux", "downflux"], core_box).with_epoch_range(12, 15);
    match spate.query(&q) {
        QueryResult::Exact(result) => {
            let total_up: i64 = result.cdr.rows.iter().filter_map(|r| r[0].as_i64()).sum();
            println!(
                "exact answer: {} CDR rows from {} epochs, total upflux {} B",
                result.cdr.rows.len(),
                result.epochs_read,
                total_up
            );
        }
        other => println!("unexpected result: {other:?}"),
    }

    // Run two of the paper's tasks on both frameworks.
    println!("\n-- Tasks --");
    let (rows, secs) = tasks::t2_range(&spate, EpochId(8), EpochId(15));
    println!("T2 range on SPATE: {} rows in {secs:.4}s", rows.len());
    let (rows, secs) = tasks::t2_range(&raw, EpochId(8), EpochId(15));
    println!("T2 range on RAW  : {} rows in {secs:.4}s", rows.len());
    let (agg, secs) = tasks::t3_aggregate(&spate, EpochId(8), EpochId(15));
    println!(
        "T3 aggregate on SPATE: {} cells, {} clusters in {secs:.4}s",
        agg.drops_per_cell.len(),
        agg.drop_rate_per_cluster.len()
    );
}
