//! Decay lifecycle: watch the "Evict Oldest Individuals" fungus keep the
//! warehouse sub-linear while queries degrade gracefully from exact rows
//! to day/month summaries.
//!
//! Run with: `cargo run --release --example decay_lifecycle`

use spate::core::framework::{ExplorationFramework, SpateFramework};
use spate::core::query::{Query, QueryResult};
use spate::core::DecayPolicy;
use spate::trace::cells::BoundingBox;
use spate::trace::time::EPOCHS_PER_DAY;
use spate::trace::{TraceConfig, TraceGenerator};

fn main() {
    // Two weeks of data; full resolution is kept for 3 days, day highlights
    // for 8, month highlights for 1 year.
    let mut config = TraceConfig::scaled(1.0 / 1024.0);
    config.days = 14;
    let policy = DecayPolicy {
        full_resolution_days: 3,
        day_highlight_days: 8,
        month_highlight_days: 365,
        year_highlight_days: 5 * 365,
    };
    let mut generator = TraceGenerator::new(config);
    let layout = generator.layout().clone();
    let mut with_decay = SpateFramework::in_memory(layout.clone()).with_decay(policy);
    let mut without = SpateFramework::in_memory(layout);

    println!("day | space with decay | space w/o decay | leaves evicted (cum.)");
    println!("----+------------------+-----------------+----------------------");
    for snapshot in generator.by_ref() {
        with_decay.ingest(&snapshot);
        without.ingest(&snapshot);
        if snapshot.epoch.epoch_in_day() == EPOCHS_PER_DAY - 1 {
            println!(
                "{:>3} | {:>13} B  | {:>12} B  | {:>6}",
                snapshot.epoch.day_index(),
                with_decay.space().total(),
                without.space().total(),
                with_decay.decay_log().leaves_evicted
            );
        }
    }

    // Query resolution per age.
    println!("\nQuery resolution by window age (whole region, one day each):");
    let last_day = 13u32;
    for day in [13u32, 11, 6, 0] {
        let q = Query::new(&["upflux"], BoundingBox::everything()).with_epoch_range(
            day * EPOCHS_PER_DAY,
            day * EPOCHS_PER_DAY + EPOCHS_PER_DAY - 1,
        );
        let desc = match with_decay.query(&q) {
            QueryResult::Exact(e) => format!(
                "EXACT   — {} rows from {} full-resolution snapshots",
                e.cdr.rows.len(),
                e.epochs_read
            ),
            QueryResult::Summary {
                resolution,
                highlights,
            } => format!(
                "SUMMARY — {} node covering epochs {}..{} ({} CDR records aggregated over {} cells)",
                resolution.label(),
                highlights.first_epoch.0,
                highlights.last_epoch.0,
                highlights.cdr_records,
                highlights.per_cell.len()
            ),
            QueryResult::Partial { result, coverage } => format!(
                "PARTIAL — {} rows, coverage {coverage}",
                result.cdr.rows.len()
            ),
            QueryResult::Unavailable => "UNAVAILABLE".to_string(),
        };
        println!("  day {:>2} (age {:>2}): {desc}", day, last_day - day);
    }

    // The paper's takeaway: retention horizon bounds full-resolution
    // storage, while highlights keep macroscopic exploration alive.
    let report = with_decay.decay_log();
    println!(
        "\nDecay totals: {} leaves evicted, {} B freed, {} day-highlights dropped",
        report.leaves_evicted, report.bytes_freed, report.day_highlights_dropped
    );
    println!(
        "Space with decay: {} B — without: {} B ({:.1}x)",
        with_decay.space().total(),
        without.space().total(),
        without.space().total() as f64 / with_decay.space().total() as f64
    );
}
