//! # SPATE — Efficient Exploration of Telco Big Data with Compression and Decaying
//!
//! A full Rust reproduction of Costa, Chatzimilioudis, Zeinalipour-Yazti
//! and Mokbel, *"Efficient Exploration of Telco Big Data with Compression
//! and Decaying"*, ICDE 2017.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `spate-core` | The SPATE framework: storage + indexing (incremence, highlights, decay) + query layers, the RAW/SHAHED baselines, tasks T1–T8 |
//! | [`codecs`] | `codecs` | From-scratch GZIP-/7z-/Snappy-/Zstd-class lossless codecs (Table I) |
//! | [`trace`] | `telco-trace` | Synthetic telco trace with the paper's schema/entropy/arrival shape |
//! | [`dfs`] | `dfs` | Simulated replicated distributed filesystem (HDFS-class) |
//! | [`engine`] | `engine` | Partitioned parallel compute + k-means / OLS / colStats (Spark-class) |
//! | [`shahed`] | `shahed` | The SHAHED spatio-temporal aggregate index baseline |
//! | [`sql`] | `spate-sql` | SPATE-SQL: SELECT-FROM-WHERE over the compressed store |
//! | [`serve`] | `spate-serve` | Multi-client serving tier: frame protocol, admission, shared epoch cache |
//! | [`privacy`] | `privacy` | k-anonymity with generalization lattices (ARX-class) |
//!
//! # Quickstart
//!
//! ```
//! use spate::core::framework::{ExplorationFramework, SpateFramework};
//! use spate::core::query::Query;
//! use spate::trace::cells::BoundingBox;
//! use spate::trace::{TraceConfig, TraceGenerator};
//!
//! let mut generator = TraceGenerator::new(TraceConfig::tiny());
//! let layout = generator.layout().clone();
//! let mut spate = SpateFramework::in_memory(layout);
//! for snapshot in generator.by_ref().take(2) {
//!     spate.ingest(&snapshot);
//! }
//! let q = Query::new(&["upflux", "downflux"], BoundingBox::everything())
//!     .with_epoch_range(0, 1);
//! assert!(spate.query(&q).is_exact());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

pub use codecs;
pub use dfs;
pub use engine;
pub use privacy;
pub use shahed;
pub use spate_core as core;
pub use spate_serve as serve;
pub use spate_sql as sql;
pub use telco_trace as trace;
